"""The paper's worked examples as executable data.

Every numbered example of *Optimizing Datalog Programs* (Sagiv, PODS
1987) is reproduced here verbatim: the programs, tgds, inputs, and the
outcome the paper derives by hand.  Tests assert these outcomes, the
benchmark harness times them, and EXPERIMENTS.md records them.

Module-level constants use the paper's names where it has them
(``P1``/``P2`` per example); the :data:`EXAMPLES` registry maps example
identifiers (``"E04"`` for Example 4, ...) to a structured description.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .core.tgds import Tgd
from .data.database import Database
from .lang.parser import parse_program, parse_rule, parse_tgd
from .lang.programs import Program

# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------

#: Example 1: transitive closure with the doubly-recursive rule.
TC_NONLINEAR: Program = parse_program(
    """
    G(x, z) :- A(x, z).
    G(x, z) :- G(x, y), G(y, z).
    """
)

#: Example 4's second program: right-linear transitive closure.
TC_LINEAR: Program = parse_program(
    """
    G(x, z) :- A(x, z).
    G(x, z) :- A(x, y), G(y, z).
    """
)

#: Example 2's EDB for the transitive-closure program.
EX2_EDB: Database = Database.from_facts({"A": [(1, 2), (1, 4), (4, 1)]})

#: Example 2's full output DB (quoted verbatim in Section III).
EX2_OUTPUT: Database = Database.from_facts(
    {
        "A": [(1, 2), (1, 4), (4, 1)],
        "G": [(1, 2), (1, 4), (4, 1), (1, 1), (4, 4), (4, 2)],
    }
)

#: Example 3's input: as Example 2 but with ``G(4,1)`` replacing ``A(4,1)``.
EX3_INPUT: Database = Database.from_facts(
    {"A": [(1, 2), (1, 4)], "G": [(4, 1)]}
)

#: Example 3's expected output: Example 2's output minus ``A(4,1)``.
EX3_OUTPUT: Database = Database.from_facts(
    {
        "A": [(1, 2), (1, 4)],
        "G": [(1, 2), (1, 4), (4, 1), (1, 1), (4, 4), (4, 2)],
    }
)

#: Example 5: Example 1's program plus a rule making ``A`` intensional.
EX5_P2: Program = TC_NONLINEAR.with_rule(parse_rule("A(x, z) :- A(x, y), G(y, z)."))

#: Example 7's ``P1``: a single rule with the redundant atom ``A(w, y)``.
EX7_P1: Program = parse_program(
    "G(x, y, z) :- G(x, w, z), A(w, y), A(w, z), A(z, z), A(z, y)."
)

#: Example 7's ``P2``: the same rule with ``A(w, y)`` deleted.
EX7_P2: Program = parse_program(
    "G(x, y, z) :- G(x, w, z), A(w, z), A(z, z), A(z, y)."
)

#: Example 11/18's ``P1``: transitive closure with the redundant ``A(y, w)``.
EX11_P1: Program = parse_program(
    """
    G(x, z) :- A(x, z).
    G(x, z) :- G(x, y), G(y, z), A(y, w).
    """
)

#: Example 11/18's ``P2``: plain transitive closure (= Example 1's program).
EX11_P2: Program = TC_NONLINEAR

#: Example 11/13/14/18's tgd set ``T``.
EX11_TGD: Tgd = parse_tgd("G(x, z) -> A(x, w)")

#: Example 12's input database.
EX12_INPUT: Database = Database.from_facts({"A": [(1, 2)], "G": [(2, 3), (3, 4)]})

#: Example 12's ``Pⁿ(d)`` (non-recursive application).
EX12_PN: frozenset = frozenset(
    Database.from_facts({"G": [(1, 2), (2, 4)]}).atoms()
)

#: Example 12's full ``P(d)``.
EX12_OUTPUT: Database = Database.from_facts(
    {"A": [(1, 2)], "G": [(2, 3), (3, 4), (1, 2), (1, 3), (2, 4), (1, 4)]}
)

#: Example 13's single recursive rule.
EX13_RULE = parse_rule("G(x, z) :- G(x, y), G(y, z), A(y, w).")

#: Example 15's two-atom-LHS tgd.
EX15_TGD: Tgd = parse_tgd("G(x, y), G(y, z) -> A(y, w)")

#: Example 16's rule (the recursive rule of Example 19's program).
EX16_RULE = parse_rule("G(x, z) :- A(x, y), G(y, z), G(y, w), C(w).")

#: Example 16/19's tgd.
EX16_TGD: Tgd = parse_tgd("G(y, z) -> G(y, w) & C(w)")

#: Example 17's EDB (a 4-node chain).
EX17_EDB: Database = Database.from_facts({"A": [(1, 2), (2, 3), (3, 4)]})

#: Example 17's ``Pⁱ(d)``.
EX17_PI: frozenset = frozenset(
    Database.from_facts({"G": [(1, 2), (2, 3), (3, 4)]}).atoms()
)

#: Example 19's ``P1``.
EX19_P1: Program = parse_program(
    """
    G(x, z) :- A(x, z), C(z).
    G(x, z) :- A(x, y), G(y, z), G(y, w), C(w).
    """
)

#: Example 19's optimized program: ``G(y, w)`` and ``C(w)`` deleted from
#: the recursive rule.  (The paper's prose says "deleting A(y,w) and
#: C(w)", a typo for the atoms actually shown redundant by the tgd
#: ``G(y,z) -> G(y,w) ∧ C(w)``, namely ``G(y,w)`` and ``C(w)``.)
EX19_P2: Program = parse_program(
    """
    G(x, z) :- A(x, z), C(z).
    G(x, z) :- A(x, y), G(y, z).
    """
)

#: Example 9's violated tgd over Example 2's output DB.
EX9_TGD_VIOLATED: Tgd = parse_tgd("G(x, y) -> A(y, z) & A(z, x)")

#: Example 9's satisfied tgd over Example 2's output DB.
EX9_TGD_SATISFIED: Tgd = parse_tgd("G(x, y) -> G(x, z) & A(z, y)")

#: Example 10's full tgd and its equivalent pair of rules.
EX10_TGD: Tgd = parse_tgd("A(x, y, z), B(w, y, v) -> A(x, y, v) & T(w, y, z)")
EX10_RULES = (
    parse_rule("A(x, y, v) :- A(x, y, z), B(w, y, v)."),
    parse_rule("T(w, y, z) :- A(x, y, z), B(w, y, v)."),
)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PaperExample:
    """One worked example: identifier, section, and a short claim."""

    ident: str
    section: str
    claim: str
    artifacts: dict = field(default_factory=dict)


EXAMPLES: dict[str, PaperExample] = {
    "E01": PaperExample(
        "E01", "II", "the two-rule program computes the transitive closure of A",
        {"program": TC_NONLINEAR},
    ),
    "E02": PaperExample(
        "E02", "III", "bottom-up output on {A(1,2),A(1,4),A(4,1)} is the 9-atom DB quoted in the text",
        {"program": TC_NONLINEAR, "input": EX2_EDB, "output": EX2_OUTPUT},
    ),
    "E03": PaperExample(
        "E03", "III", "with G(4,1) given as an initial IDB fact the output loses only A(4,1)",
        {"program": TC_NONLINEAR, "input": EX3_INPUT, "output": EX3_OUTPUT},
    ),
    "E04": PaperExample(
        "E04", "IV", "TC variants: P2 ⊑u P1 holds but P1 ⊑u P2 fails (equivalent, not uniformly)",
        {"p1": TC_NONLINEAR, "p2": TC_LINEAR},
    ),
    "E05": PaperExample(
        "E05", "IV", "adding rule A(x,z) :- A(x,y), G(y,z) yields P1 ⊑u P2",
        {"p1": TC_NONLINEAR, "p2": EX5_P2},
    ),
    "E06": PaperExample(
        "E06", "VI", "the freezing test proves P2 ⊑u P1 and refutes P1 ⊑u P2 rule by rule",
        {"p1": TC_NONLINEAR, "p2": TC_LINEAR},
    ),
    "E07": PaperExample(
        "E07", "VI", "A(w,y) is redundant: P2 ⊑u P1 shown by two chase applications",
        {"p1": EX7_P1, "p2": EX7_P2},
    ),
    "E08": PaperExample(
        "E08", "VII", "Fig. 1 minimizes Example 7's rule to P2, which is minimal",
        {"p1": EX7_P1, "p2": EX7_P2},
    ),
    "E09": PaperExample(
        "E09", "VIII", "one tgd is violated and another satisfied by Example 2's output DB",
        {"db": EX2_OUTPUT, "violated": EX9_TGD_VIOLATED, "satisfied": EX9_TGD_SATISFIED},
    ),
    "E10": PaperExample(
        "E10", "VIII", "a full tgd applies exactly like its two Datalog rules",
        {"tgd": EX10_TGD, "rules": EX10_RULES},
    ),
    "E11": PaperExample(
        "E11", "VIII", "the chase with [P1, T] proves SAT(T) ∩ M(P1) ⊆ M(P2)",
        {"p1": EX11_P1, "p2": EX11_P2, "tgds": [EX11_TGD]},
    ),
    "E12": PaperExample(
        "E12", "IX", "Pⁿ(d) = {G(1,2), G(2,4)} while P(d) has seven atoms",
        {"program": TC_NONLINEAR, "input": EX12_INPUT, "pn": EX12_PN, "output": EX12_OUTPUT},
    ),
    "E13": PaperExample(
        "E13", "IX", "the single rule preserves G(x,z) -> A(x,w) non-recursively",
        {"rule": EX13_RULE, "tgds": [EX11_TGD]},
    ),
    "E14": PaperExample(
        "E14", "IX", "P1 preserves T non-recursively (three head-unification cases)",
        {"program": EX11_P1, "tgds": [EX11_TGD]},
    ),
    "E15": PaperExample(
        "E15", "IX", "two-atom-LHS tgd: all four unification combinations pass",
        {"rule": EX13_RULE, "tgds": [EX15_TGD]},
    ),
    "E16": PaperExample(
        "E16", "IX", "the rule preserves G(y,z) -> G(y,w) ∧ C(w) non-recursively",
        {"rule": EX16_RULE, "tgds": [EX16_TGD]},
    ),
    "E17": PaperExample(
        "E17", "X", "Pⁱ(d) on the 3-edge chain is {G(1,2), G(2,3), G(3,4)}",
        {"program": TC_NONLINEAR, "input": EX17_EDB, "pi": EX17_PI},
    ),
    "E18": PaperExample(
        "E18", "X", "the full recipe proves P1 ≡ P2: A(y,w) is redundant under equivalence",
        {"p1": EX11_P1, "p2": EX11_P2, "tgds": [EX11_TGD]},
    ),
    "E19": PaperExample(
        "E19", "XI", "the heuristic finds the tgd and G(y,w), C(w) are deleted",
        {"p1": EX19_P1, "p2": EX19_P2, "tgds": [EX16_TGD]},
    ),
}


def single_rule_program(rule) -> Program:
    """Wrap one rule as a program (several examples treat rules as programs)."""
    return Program.of(rule)
