"""Differential-testing harness, exposed as a public API.

The repository's own property tests cross-check every engine and every
optimizer against independent oracles; this module packages those
oracles so that downstream users who extend the library (a new engine,
a new rewriting, a new optimization) can fuzz their change with one
call::

    from repro.testing import run_differential_suite

    report = run_differential_suite(seeds=100)
    assert report.ok, report.failures

Checks performed per seed:

* **engines agree** -- naive, semi-naive and (on queries) magic,
  supplementary magic and tabled top-down all produce the same answers;
* **optimization is sound** -- `minimize_program` output is uniformly
  equivalent to its input and produces identical databases on sampled
  EDBs; `optimize` output produces identical databases on sampled EDBs;
* **maintenance is exact** -- a DRed-maintained view equals
  recomputation after random insert/delete scripts.

All generators take explicit seeds and are deterministic, so a failure
report is sufficient to reproduce the bug.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from .core.containment import uniformly_equivalent
from .core.minimize import minimize_program
from .core.optimizer import optimize
from .data.database import Database
from .engine.fixpoint import evaluate
from .engine.incremental import MaterializedView
from .engine.magic import answer_query
from .engine.naive import naive_fixpoint
from .engine.seminaive import seminaive_fixpoint
from .engine.supplementary import answer_query_supplementary
from .engine.topdown import tabled_query
from .lang.atoms import Atom
from .lang.programs import Program
from .lang.terms import Variable
from .workloads.programs import random_positive_program


@dataclass
class Failure:
    """One failed check, with everything needed to reproduce it."""

    check: str
    seed: int
    detail: str
    program: Program | None = None

    def __str__(self) -> str:
        return f"[{self.check}] seed={self.seed}: {self.detail}"


@dataclass
class DifferentialReport:
    """The outcome of a differential run."""

    seeds_run: int = 0
    checks_run: int = 0
    failures: list[Failure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return f"{status}: {self.checks_run} checks over {self.seeds_run} seeds"


def random_database(seed: int, domain: int = 4, facts: int = 12) -> Database:
    """A random EDB over predicates ``E0``/``E1`` with a small domain."""
    rng = random.Random(seed)
    db = Database()
    for _ in range(rng.randint(0, facts)):
        pred = f"E{rng.randrange(2)}"
        db.add_fact(pred, rng.randrange(domain), rng.randrange(domain))
    return db


def random_program(seed: int) -> Program:
    """A random safe positive program (wraps the workload generator)."""
    rng = random.Random(seed)
    return random_positive_program(
        rules=rng.randint(1, 5),
        max_body=3,
        predicates=2,
        variables_per_rule=4,
        seed=seed,
    )


def check_engines_agree(program: Program, db: Database) -> str | None:
    """Naive vs semi-naive; returns an error string or ``None``."""
    naive = naive_fixpoint(program, db).database
    semi = seminaive_fixpoint(program, db).database
    if naive != semi:
        return (
            f"naive and semi-naive disagree: "
            f"{sorted(map(str, naive.difference(semi)))} vs "
            f"{sorted(map(str, semi.difference(naive)))}"
        )
    return None


def check_query_strategies_agree(
    program: Program, db: Database, query: Atom
) -> str | None:
    """Magic, supplementary magic, tabled top-down vs full evaluation."""
    full = evaluate(program, db).database
    from .lang.substitution import match_atom

    expected = {
        row
        for row in full.tuples(query.predicate)
        if match_atom(query, Atom(query.predicate, row)) is not None
    }
    strategies: list[tuple[str, Callable]] = [
        ("magic", lambda: set(answer_query(program, db, query)[0].tuples(query.predicate))),
        (
            "supplementary",
            lambda: set(
                answer_query_supplementary(program, db, query)[0].tuples(query.predicate)
            ),
        ),
        (
            "tabled",
            lambda: set(tabled_query(program, db, query).answers.tuples(query.predicate)),
        ),
    ]
    for name, run in strategies:
        got = run()
        if got != expected:
            return f"{name} disagrees with full evaluation: {len(got)} vs {len(expected)} answers"
    return None


def check_minimization_sound(program: Program, sample_dbs: list[Database]) -> str | None:
    """Fig. 2 output: uniformly equivalent + identical on sampled EDBs."""
    minimized = minimize_program(program).program
    if not uniformly_equivalent(program, minimized):
        return "minimize_program output is not uniformly equivalent to its input"
    for index, db in enumerate(sample_dbs):
        if evaluate(program, db).database != evaluate(minimized, db).database:
            return f"minimize_program changed results on sample EDB #{index}"
    return None


def check_optimizer_sound(program: Program, sample_dbs: list[Database]) -> str | None:
    """Full optimizer output: identical databases on sampled EDBs."""
    optimized = optimize(program).optimized
    for index, db in enumerate(sample_dbs):
        if evaluate(program, db).database != evaluate(optimized, db).database:
            return f"optimize changed results on sample EDB #{index}"
    return None


def check_maintenance_exact(program: Program, seed: int) -> str | None:
    """DRed view vs recomputation over a random insert/delete script."""
    rng = random.Random(seed)
    base = random_database(seed, domain=4, facts=10)
    view = MaterializedView(program, base)
    live = set(base.atoms())
    for step in range(8):
        if live and rng.random() < 0.5:
            atom = rng.choice(sorted(live, key=str))
            view.delete(atom)
            live.discard(atom)
        else:
            atom = Atom.of(f"E{rng.randrange(2)}", rng.randrange(4), rng.randrange(4))
            view.insert(atom)
            live.add(atom)
        if view.database != evaluate(program, Database(live)).database:
            return f"maintained view diverged from recomputation at step {step}"
    return None


def run_differential_suite(
    seeds: int = 50,
    start_seed: int = 0,
    include_maintenance: bool = True,
) -> DifferentialReport:
    """Run every check over *seeds* consecutive seeds."""
    report = DifferentialReport()
    tc_query_program = Program.from_source(
        """
        G(x, z) :- E0(x, z).
        G(x, z) :- E0(x, y), G(y, z).
        """
    )
    for seed in range(start_seed, start_seed + seeds):
        report.seeds_run += 1
        program = random_program(seed)
        db = random_database(seed)
        samples = [random_database(seed * 31 + i, facts=8) for i in range(2)]

        for check, error in (
            ("engines-agree", check_engines_agree(program, db)),
            ("minimization-sound", check_minimization_sound(program, samples)),
            ("optimizer-sound", check_optimizer_sound(program, samples)),
        ):
            report.checks_run += 1
            if error:
                report.failures.append(Failure(check, seed, error, program))

        # Query strategies on a known-recursive program over this seed's EDB.
        rng = random.Random(seed ^ 0xBEEF)
        query = Atom.of("G", rng.randrange(4), Variable("x"))
        report.checks_run += 1
        error = check_query_strategies_agree(tc_query_program, db, query)
        if error:
            report.failures.append(Failure("query-strategies", seed, error))

        if include_maintenance:
            report.checks_run += 1
            error = check_maintenance_exact(tc_query_program, seed)
            if error:
                report.failures.append(Failure("maintenance", seed, error, tc_query_program))
    return report
