"""Exception hierarchy for the ``repro`` Datalog optimization library.

Every error deliberately raised by the library derives from
:class:`ReproError`, so downstream users can catch a single base class.
Errors are grouped by the stage that raises them:

* language / validation errors (:class:`ParseError`,
  :class:`UnsafeRuleError`, :class:`ArityError`, ...),
* evaluation errors (:class:`StratificationError`),
* resource errors raised by the semi-decidable chase procedures
  (:class:`BudgetExceededError`) -- note that most chase entry points
  prefer returning a three-valued outcome over raising; the exception is
  only used by the low-level ``chase`` driver when asked to raise,
* resilience errors (:class:`ResourceLimitExceeded`,
  :class:`TransientStorageError`) raised by the
  :mod:`repro.resilience` governor and fault-injection layers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ParseError(ReproError):
    """Raised when Datalog or tgd source text cannot be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token
    when available, so tools can point at the failure location.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column


class ValidationError(ReproError):
    """Base class for structural problems in programs, rules, or tgds."""


class UnsafeRuleError(ValidationError):
    """A rule violates the range-restriction (safety) requirement.

    The paper assumes every variable in the head of a rule also appears
    in the body; for the stratified-negation extension, variables of
    negated literals must also occur in some positive body atom.
    """


class ArityError(ValidationError):
    """The same predicate is used with two different arities."""


class GroundnessError(ValidationError):
    """An operation that requires ground atoms received a non-ground one.

    For example, adding a fact with variables to a database.
    """


class TgdError(ValidationError):
    """A tuple-generating dependency is structurally malformed.

    For example, an empty left- or right-hand side.
    """


class StratificationError(ReproError):
    """The program uses negation through recursion and cannot be stratified."""


class BudgetExceededError(ReproError):
    """A chase run exhausted its step/null/fact budget.

    Most public procedures catch this internally and report an
    ``UNKNOWN`` outcome instead; it escapes only from low-level drivers
    invoked with ``on_budget='raise'``.  ``limit`` names the limit that
    tripped -- ``"rounds"``, ``"nulls"``, or ``"atoms"`` -- so callers
    (and the ``chase.budget_exhausted.<limit>`` metric) can distinguish
    a runaway chase from a merely large database.
    """

    def __init__(self, message: str, limit: str | None = None):
        super().__init__(message)
        #: Which limit tripped: ``"rounds"``, ``"nulls"``, or ``"atoms"``.
        self.limit = limit


class ResourceLimitExceeded(ReproError):
    """A :class:`~repro.resilience.ResourceGovernor` limit tripped.

    Carries the :class:`~repro.resilience.DegradationReport` naming
    which limit tripped and where (engine, stratum, rule, round).  The
    engines catch this internally and return a ``PARTIAL``
    :class:`~repro.engine.fixpoint.EvaluationResult`; it escapes to
    callers only under ``on_limit='raise'`` (or from operations, such as
    incremental view maintenance, where a partial result would be
    unsound and the operation rolls back instead).
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        #: The attached :class:`~repro.resilience.DegradationReport` (if any).
        self.report = report


class TransientStorageError(ReproError):
    """A (possibly injected) transient fault at a storage seam.

    Raised by the fault-injection harness (:mod:`repro.resilience.faults`)
    at :class:`~repro.data.database.Database` operation seams; a real
    deployment would map remote-backend hiccups to this type.  The
    :class:`~repro.resilience.EvaluationSession` retry loop treats it as
    retryable; any other exception is not.
    """


class WorkerCrashError(TransientStorageError):
    """A parallel evaluation worker process died mid-run.

    A :class:`TransientStorageError` subtype, so the
    :class:`~repro.resilience.EvaluationSession` retry loop treats a
    crashed worker (OOM kill, segfault, chaos ``SIGKILL``) exactly like
    a storage hiccup: the pool is torn down and the evaluation retries.
    Round barriers are the checkpoint sites, so a checkpointed retry
    resumes from the last completed round regardless of worker count.
    """


class CheckpointError(ReproError):
    """A checkpoint file is missing, corrupt, or incompatible.

    Raised by :mod:`repro.resilience.checkpoint` when a snapshot fails
    its checksum, cannot be parsed (torn/truncated write), carries an
    unknown format version, or does not match the program it is being
    resumed against (fingerprint mismatch).  Recovery code treats a
    corrupt *latest* generation as skippable -- it falls back to the
    previous generation -- and only raises when no valid generation
    remains.
    """


class SimulatedCrash(ReproError):
    """An injected process-abort from the ``crash`` fault seam.

    Deliberately **not** a :class:`TransientStorageError`: the retry
    loop must not absorb it.  A simulated crash terminates the
    evaluation exactly as ``SIGKILL`` would terminate the process --
    whatever checkpoint generations are already durable are all that
    recovery gets to work with.
    """
