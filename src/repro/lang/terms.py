"""Term types for Datalog: variables, constants, nulls, frozen constants.

The paper (Section II) permits only predicates, variables and constants --
no function symbols.  Two further term kinds are internal to the
algorithms of the paper:

* :class:`Null` -- labelled nulls ("unknown values", Section VIII),
  introduced when an *embedded* tgd is applied during the chase.  Once
  added, a null behaves exactly like a constant for subsequent rule and
  tgd applications, which is why :meth:`Null.is_ground` is ``True``.

* :class:`FrozenConstant` -- the distinct constants used to "freeze" the
  body of a rule into a canonical database (Section VI).  The paper
  requires these to be constants *not already appearing in the rule*;
  using a dedicated type guarantees freshness by construction.  In the
  paper's notation a variable ``x`` is frozen to the constant ``x0``.

All term types are immutable, hashable and totally ordered within their
own kind, so they can be used in sets, as dictionary keys, and sorted
for deterministic output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Variable:
    """A Datalog variable, e.g. ``x`` in ``G(x, z)``.

    By the paper's convention (and this library's parser), variable
    names begin with a lowercase letter; predicates begin uppercase.
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    @property
    def is_ground(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class Constant:
    """A Datalog constant.

    The paper assumes constants are integers; for usability this library
    also accepts strings (written single-quoted in source text).
    """

    value: Union[int, str]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    @property
    def is_ground(self) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class Null:
    """A labelled null: an unknown value introduced by an embedded tgd.

    Section VIII: "we follow the approach of database theory and view
    Skolem functions as nulls".  Nulls are written ``δ1, δ2, ...`` in the
    paper; here they print as ``@1, @2, ...``.  Once a null is in a
    database it is treated as a constant by rule and tgd application.
    """

    ident: int

    def __str__(self) -> str:
        return f"@{self.ident}"

    def __repr__(self) -> str:
        return f"Null({self.ident})"

    @property
    def is_ground(self) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class FrozenConstant:
    """A fresh constant standing for a frozen variable (Section VI).

    ``FrozenConstant('x', 0)`` is the paper's ``x0``: the canonical
    constant substituted for variable ``x`` when a rule body is turned
    into a database.  The ``serial`` disambiguates multiple freezings in
    one computation (e.g. when rule variables are renamed apart).
    """

    name: str
    serial: int = 0

    def __str__(self) -> str:
        if self.serial == 0:
            return f"{self.name}#"
        return f"{self.name}#{self.serial}"

    def __repr__(self) -> str:
        return f"FrozenConstant({self.name!r}, {self.serial})"

    @property
    def is_ground(self) -> bool:
        return True


#: Any term that can appear in an atom.
Term = Union[Variable, Constant, Null, FrozenConstant]

#: Terms that count as "ground" (may appear in database facts).
GroundTerm = Union[Constant, Null, FrozenConstant]

_SORT_RANK = {Constant: 0, Null: 1, FrozenConstant: 2, Variable: 3}


def is_ground_term(term: Term) -> bool:
    """Return ``True`` iff *term* may appear in a database fact."""
    return term.is_ground


def term_sort_key(term: Term) -> tuple:
    """A total order over mixed terms, for deterministic printing.

    Constants sort before nulls before frozen constants before
    variables; within a kind, ordering is by the natural key.  Integer
    and string constant values are compared via a type tag so mixed
    databases still sort deterministically.
    """
    rank = _SORT_RANK[type(term)]
    if isinstance(term, Constant):
        tag = 0 if isinstance(term.value, int) else 1
        return (rank, tag, term.value)
    if isinstance(term, Null):
        return (rank, 0, term.ident)
    if isinstance(term, FrozenConstant):
        return (rank, 0, (term.name, term.serial))
    return (rank, 0, term.name)


class NullFactory:
    """Produces fresh, never-repeating labelled nulls.

    Each chase run owns one factory so null identities are stable and
    reproducible for a given input.
    """

    def __init__(self, start: int = 1):
        self._next = start

    def fresh(self) -> Null:
        """Return a null that this factory has never returned before."""
        null = Null(self._next)
        self._next += 1
        return null

    @property
    def issued(self) -> int:
        """Number of nulls issued so far."""
        return self._next - 1
