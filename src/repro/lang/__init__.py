"""Datalog language core: terms, atoms, rules, programs, parsing, freezing.

Quick construction helpers::

    from repro.lang import parse_program, variables, Atom

    program = parse_program('''
        G(x, z) :- A(x, z).
        G(x, z) :- G(x, y), G(y, z).
    ''')
    x, y = variables("x y")
    atom = Atom.of("A", x, 3)
"""

from __future__ import annotations

from .atoms import Atom, Literal, atoms_variables, coerce_term
from .canonical import (
    canonicalize_program,
    canonicalize_rule,
    modulo_body_order,
    programs_isomorphic,
    rules_isomorphic,
)
from .freeze import FrozenRule, freeze_atoms, freeze_rule
from .parser import (
    ParsedProgram,
    SourceSpan,
    parse_atom,
    parse_program,
    parse_program_with_spans,
    parse_rule,
    parse_tgd,
    parse_tgds,
)
from .rename import merge_disjoint, namespace, rename_predicates
from .pretty import (
    format_atom,
    format_atoms,
    format_database,
    format_program,
    format_rule,
    format_tgd,
)
from .programs import Program, program_from_rules
from .serialize import (
    database_from_json,
    database_to_json,
    program_from_json,
    program_to_json,
)
from .rules import Rule
from .substitution import Substitution, match_atom, unify_atoms
from .terms import (
    Constant,
    FrozenConstant,
    GroundTerm,
    Null,
    NullFactory,
    Term,
    Variable,
    is_ground_term,
    term_sort_key,
)


def variables(names: str) -> tuple[Variable, ...]:
    """Create several variables from a whitespace-separated name string.

    >>> x, y, z = variables("x y z")
    """
    return tuple(Variable(n) for n in names.split())


def constants(*values) -> tuple[Constant, ...]:
    """Create several constants from Python ints/strings."""
    return tuple(Constant(v) for v in values)


__all__ = [
    "Atom",
    "Constant",
    "FrozenConstant",
    "FrozenRule",
    "GroundTerm",
    "Literal",
    "Null",
    "NullFactory",
    "ParsedProgram",
    "Program",
    "Rule",
    "SourceSpan",
    "Substitution",
    "Term",
    "Variable",
    "atoms_variables",
    "canonicalize_program",
    "canonicalize_rule",
    "coerce_term",
    "constants",
    "database_from_json",
    "database_to_json",
    "format_atom",
    "format_atoms",
    "format_database",
    "format_program",
    "format_rule",
    "format_tgd",
    "freeze_atoms",
    "freeze_rule",
    "is_ground_term",
    "match_atom",
    "merge_disjoint",
    "modulo_body_order",
    "namespace",
    "parse_atom",
    "parse_program",
    "parse_program_with_spans",
    "parse_rule",
    "parse_tgd",
    "parse_tgds",
    "program_from_json",
    "programs_isomorphic",
    "program_from_rules",
    "program_to_json",
    "rename_predicates",
    "rules_isomorphic",
    "term_sort_key",
    "unify_atoms",
    "variables",
]
