"""Predicate renaming and program namespacing.

Composition utilities for working with several programs at once:
renaming predicates (with collision checks), prefixing a whole program
into a namespace, and merging programs whose predicate vocabularies
must stay disjoint.  Used by tooling and tests; the complement encoding
of :mod:`repro.core.stratified_opt` and the seed construction of
:mod:`repro.core.reductions` are specialized instances of the same
idea.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import ValidationError
from .atoms import Atom, Literal
from .programs import Program
from .rules import Rule


def rename_predicates(program: Program, mapping: Mapping[str, str]) -> Program:
    """Rename predicates throughout *program* according to *mapping*.

    Unmapped predicates pass through.  Raises
    :class:`~repro.errors.ValidationError` if the renaming would merge
    two previously distinct predicates (including mapping onto an
    existing unmapped name) -- silent merges change semantics.
    """
    targets: dict[str, str] = {}
    for pred in program.predicates:
        new = mapping.get(pred, pred)
        for existing_old, existing_new in targets.items():
            if existing_new == new and existing_old != pred:
                raise ValidationError(
                    f"renaming merges predicates {existing_old!r} and {pred!r} into {new!r}"
                )
        targets[pred] = new

    def rename_atom(atom: Atom) -> Atom:
        return Atom(targets.get(atom.predicate, atom.predicate), atom.args)

    rules = [
        Rule(
            rename_atom(rule.head),
            [Literal(rename_atom(lit.atom), lit.positive) for lit in rule.body],
        )
        for rule in program.rules
    ]
    return Program(rules)


def namespace(program: Program, prefix: str) -> Program:
    """Prefix every predicate with ``<prefix>_`` (capitalization kept).

    The prefix must itself start with an uppercase letter so the result
    still parses under the paper's naming convention.
    """
    if not prefix or not prefix[0].isupper():
        raise ValidationError(
            f"namespace prefix {prefix!r} must start with an uppercase letter"
        )
    mapping = {pred: f"{prefix}_{pred}" for pred in program.predicates}
    return rename_predicates(program, mapping)


def merge_disjoint(*programs: Program) -> Program:
    """Union of programs whose predicate sets must not overlap.

    Raises :class:`~repro.errors.ValidationError` on any shared
    predicate; use :func:`namespace` first when overlap is intended to
    be kept apart, or ``Program.union`` when sharing is intended.
    """
    seen: dict[str, int] = {}
    for index, program in enumerate(programs):
        for pred in program.predicates:
            if pred in seen:
                raise ValidationError(
                    f"programs #{seen[pred]} and #{index} both use predicate {pred!r}; "
                    "namespace them or use Program.union for intentional sharing"
                )
            seen[pred] = index
    merged: tuple[Rule, ...] = ()
    for program in programs:
        merged = merged + program.rules
    return Program(merged)
