"""Freezing rules into canonical databases (Section VI).

To test whether a single rule ``r = h :- b`` is uniformly contained in a
program ``P``, the paper instantiates the variables of ``r`` to
*distinct constants not already in r* (the substitution ``θ``), turning
the body into a canonical database ``bθ``; then ``r ⊑u P`` holds iff
``hθ ∈ P(bθ)`` (Corollary 2).

:func:`freeze_rule` performs exactly this construction using
:class:`~repro.lang.terms.FrozenConstant` terms, which can never collide
with constants that occur in the rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from .atoms import Atom
from .rules import Rule
from .substitution import Substitution
from .terms import FrozenConstant, Variable


@dataclass(frozen=True)
class FrozenRule:
    """The outcome of freezing a rule.

    Attributes:
        head: the frozen (ground) head ``hθ``.
        body: the frozen (ground) body atoms ``bθ`` in original order.
        theta: the freezing substitution ``θ`` (variables to frozen
            constants), kept for producing readable transcripts.
    """

    head: Atom
    body: tuple[Atom, ...]
    theta: Substitution

    def unfreeze(self) -> Substitution:
        """The inverse mapping as a plain dict-backed substitution.

        Only meaningful for display purposes: frozen constants map back
        to the variables they stand for.
        """
        inverse = {}
        for var, const in self.theta.items():
            inverse[const] = var
        return inverse  # type: ignore[return-value]


def freeze_rule(rule: Rule, serial: int = 0) -> FrozenRule:
    """Freeze *rule*'s variables to distinct fresh constants.

    Each variable ``x`` maps to ``FrozenConstant(x.name, serial)`` -- the
    paper's ``x0``.  Pass a different *serial* when several independent
    freezings must coexist in one database.

    Only positive rules can be frozen (the paper's procedures apply to
    positive programs).
    """
    mapping = {
        var: FrozenConstant(var.name, serial)
        for var in sorted(rule.variables(), key=lambda v: v.name)
    }
    theta = Substitution(mapping)
    body = tuple(theta.apply_atom(atom) for atom in rule.body_atoms())
    head = theta.apply_atom(rule.head)
    return FrozenRule(head=head, body=body, theta=theta)


def freeze_atoms(atoms: tuple[Atom, ...], serial: int = 0) -> tuple[tuple[Atom, ...], Substitution]:
    """Freeze a conjunction of atoms (used for tgd left-hand sides).

    Returns the frozen atoms and the substitution used.
    """
    variables: set[Variable] = set()
    for atom in atoms:
        variables.update(atom.variables())
    mapping = {var: FrozenConstant(var.name, serial) for var in sorted(variables, key=lambda v: v.name)}
    theta = Substitution(mapping)
    return tuple(theta.apply_atom(a) for a in atoms), theta
