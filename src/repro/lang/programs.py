"""Datalog programs.

A :class:`Program` is an ordered collection of rules (order matters only
for deterministic iteration; semantics are set-based).  On construction
a program validates:

* **arity consistency** -- each predicate is used with one arity
  throughout (:class:`~repro.errors.ArityError` otherwise);
* **rule safety** -- delegated to :class:`~repro.lang.rules.Rule`.

Programs expose the paper's predicate classification (Section III):
*intensional* predicates appear in some rule head, *extensional*
predicates do not; *initialization rules* have only extensional
predicates in the body (Section X).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from ..errors import ArityError
from .atoms import Atom, Literal
from .rules import Rule


class Program:
    """An immutable set of Datalog rules with cached classification."""

    __slots__ = ("_rules", "_arities", "_idb", "_edb")

    def __init__(self, rules: Sequence[Rule] = ()):
        # Preserve first-occurrence order but drop duplicates: a program
        # is semantically a set of rules.
        seen: dict[Rule, None] = {}
        for rule in rules:
            seen.setdefault(rule)
        self._rules: tuple[Rule, ...] = tuple(seen)
        self._arities: dict[str, int] = {}
        self._check_arities()
        self._idb: frozenset[str] = frozenset(r.head.predicate for r in self._rules)
        body_preds: set[str] = set()
        for rule in self._rules:
            body_preds.update(rule.body_predicates())
        self._edb: frozenset[str] = frozenset(body_preds - self._idb)

    def _check_arities(self) -> None:
        def note(atom: Atom) -> None:
            known = self._arities.get(atom.predicate)
            if known is None:
                self._arities[atom.predicate] = atom.arity
            elif known != atom.arity:
                raise ArityError(
                    f"predicate {atom.predicate} used with arity {known} and {atom.arity}"
                )

        for rule in self._rules:
            note(rule.head)
            for literal in rule.body:
                note(literal.atom)

    # -- construction ------------------------------------------------------
    @classmethod
    def of(cls, *rules: Rule) -> "Program":
        return cls(rules)

    @classmethod
    def from_source(cls, source: str) -> "Program":
        """Parse a program from Datalog source text (see ``repro.lang.parser``)."""
        from .parser import parse_program

        return parse_program(source)

    # -- collection protocol -------------------------------------------------
    @property
    def rules(self) -> tuple[Rule, ...]:
        return self._rules

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule: Rule) -> bool:
        return rule in self._rules

    def __eq__(self, other) -> bool:
        """Syntactic equality as rule *sets* (order-insensitive)."""
        if not isinstance(other, Program):
            return NotImplemented
        return set(self._rules) == set(other._rules)

    def __hash__(self) -> int:
        return hash(frozenset(self._rules))

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self._rules)

    def __repr__(self) -> str:
        return f"Program({list(self._rules)!r})"

    # -- classification (Section III / X) -----------------------------------
    @property
    def idb_predicates(self) -> frozenset[str]:
        """Predicates appearing as some rule head (intensional)."""
        return self._idb

    @property
    def edb_predicates(self) -> frozenset[str]:
        """Predicates appearing only in rule bodies (extensional)."""
        return self._edb

    @property
    def predicates(self) -> frozenset[str]:
        return self._idb | self._edb

    def arity(self, predicate: str) -> int:
        """The arity of *predicate*; raises ``KeyError`` if unused."""
        return self._arities[predicate]

    @property
    def arities(self) -> dict[str, int]:
        return dict(self._arities)

    def rules_for(self, predicate: str) -> tuple[Rule, ...]:
        """The rules whose head predicate is *predicate*."""
        return tuple(r for r in self._rules if r.head.predicate == predicate)

    def initialization_rules(self) -> tuple[Rule, ...]:
        """Rules whose body mentions only extensional predicates (Section X).

        Ground facts (empty-body rules) also count: their body trivially
        has only extensional predicates.
        """
        return tuple(r for r in self._rules if r.body_predicates() <= self._edb)

    def initialization_program(self) -> "Program":
        """``P^i`` -- the non-recursive program of initialization rules."""
        return Program(self.initialization_rules())

    @property
    def is_positive(self) -> bool:
        return all(r.is_positive for r in self._rules)

    def size(self) -> int:
        """Total number of atoms (heads plus body literals)."""
        return sum(1 + len(r.body) for r in self._rules)

    # -- functional updates ----------------------------------------------------
    def with_rule(self, rule: Rule) -> "Program":
        """A program with *rule* appended (no-op if already present)."""
        if rule in self._rules:
            return self
        return Program(self._rules + (rule,))

    def without_rule(self, rule: Rule) -> "Program":
        """A program with *rule* removed (the paper's ``P̂``)."""
        return Program(tuple(r for r in self._rules if r != rule))

    def replace_rule(self, old: Rule, new: Rule) -> "Program":
        """A program with *old* replaced by *new*, preserving position."""
        return Program(tuple(new if r == old else r for r in self._rules))

    def map_rules(self, fn: Callable[[Rule], Rule]) -> "Program":
        return Program(tuple(fn(r) for r in self._rules))

    def union(self, other: "Program") -> "Program":
        return Program(self._rules + other.rules)

    # -- helpers used by the paper's procedures ---------------------------------
    def with_trivial_rules(self) -> "Program":
        """Augment with ``Q(x1..xn) :- Q(x1..xn)`` for each IDB predicate.

        Section IX: "we will assume that each program is augmented with
        these trivial rules" when enumerating unification combinations
        in the preservation test.
        """
        from .terms import Variable

        extra: list[Rule] = []
        for pred in sorted(self._idb):
            n = self._arities[pred]
            args = tuple(Variable(f"x{i + 1}") for i in range(n))
            atom = Atom(pred, args)
            trivial = Rule(atom, [Literal(atom)])
            if trivial not in self._rules:
                extra.append(trivial)
        return Program(self._rules + tuple(extra))


def program_from_rules(rules: Iterable[Rule]) -> Program:
    """Convenience constructor accepting any iterable of rules."""
    return Program(tuple(rules))
