"""Pretty-printing helpers.

``str()`` on any AST object already produces parseable source text; this
module adds multi-line formatting, alignment, and round-trip helpers
used by the CLI, the examples, and EXPERIMENTS.md generation.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

from .atoms import Atom
from .programs import Program
from .rules import Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..core.tgds import Tgd
    from ..data.database import Database


def format_atom(atom: Atom) -> str:
    """Render one atom, identical to ``str(atom)``."""
    return str(atom)


def format_rule(rule: Rule, align_at: int | None = None) -> str:
    """Render one rule; optionally pad the head to *align_at* columns."""
    if not rule.body:
        return f"{rule.head}."
    head = str(rule.head)
    if align_at is not None:
        head = head.ljust(align_at)
    inner = ", ".join(str(lit) for lit in rule.body)
    return f"{head} :- {inner}."


def format_program(program: Program, align: bool = True) -> str:
    """Render a program one rule per line, heads column-aligned.

    The output is valid input for :func:`repro.lang.parser.parse_program`.
    """
    if not program.rules:
        return ""
    width = max(len(str(r.head)) for r in program.rules) if align else None
    return "\n".join(format_rule(r, width) for r in program.rules)


def format_tgd(tgd: "Tgd") -> str:
    """Render a tgd as ``LHS -> RHS`` with ``&``-joined conjunctions."""
    lhs = ", ".join(str(a) for a in tgd.lhs)
    rhs = " & ".join(str(a) for a in tgd.rhs)
    return f"{lhs} -> {rhs}"


def format_atoms(atoms: Iterable[Atom], sort: bool = True) -> str:
    """Render a set of ground atoms as ``{A(1,2), G(1,4), ...}``."""
    items = list(atoms)
    if sort:
        items.sort(key=lambda a: a.sort_key())
    inner = ", ".join(str(a) for a in items)
    return "{" + inner + "}"


def format_database(db: "Database", sort: bool = True) -> str:
    """Render a database grouped by predicate, one predicate per line."""
    lines = []
    for pred in sorted(db.predicates):
        atoms = sorted(db.atoms_for(pred), key=lambda a: a.sort_key()) if sort else db.atoms_for(pred)
        inner = ", ".join(str(a) for a in atoms)
        lines.append(f"{pred}: {inner}")
    return "\n".join(lines)
