"""JSON-serializable representations of programs, rules, and databases.

Tooling around the optimizer (result caches, experiment manifests,
cross-process pipelines) needs a stable interchange format.  The schema
is deliberately simple and versioned:

* a term is ``{"var": name}``, ``{"int": n}``, ``{"str": s}``,
  ``{"null": id}`` or ``{"frozen": [name, serial]}``;
* an atom is ``{"pred": name, "args": [term, ...]}``;
* a literal adds ``"neg": true`` when negated;
* a rule is ``{"head": atom, "body": [literal, ...]}``;
* a program is ``{"format": 1, "rules": [rule, ...]}``;
* a database is ``{"format": 1, "facts": {pred: [[term, ...], ...]}}``.

Round-trip guarantees are covered by tests; unknown keys raise
:class:`~repro.errors.ValidationError` so schema drift fails loudly.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from ..errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - break the lang -> data import cycle
    from ..data.database import Database
from .atoms import Atom, Literal
from .programs import Program
from .rules import Rule
from .terms import Constant, FrozenConstant, Null, Term, Variable

FORMAT_VERSION = 1


# -- terms ----------------------------------------------------------------------
def term_to_dict(term: Term) -> dict[str, Any]:
    if isinstance(term, Variable):
        return {"var": term.name}
    if isinstance(term, Constant):
        key = "int" if isinstance(term.value, int) else "str"
        return {key: term.value}
    if isinstance(term, Null):
        return {"null": term.ident}
    if isinstance(term, FrozenConstant):
        return {"frozen": [term.name, term.serial]}
    raise ValidationError(f"cannot serialize term {term!r}")


def term_from_dict(data: dict[str, Any]) -> Term:
    if len(data) != 1:
        raise ValidationError(f"malformed term object: {data!r}")
    ((key, value),) = data.items()
    if key == "var":
        return Variable(value)
    if key == "int":
        return Constant(int(value))
    if key == "str":
        return Constant(str(value))
    if key == "null":
        return Null(int(value))
    if key == "frozen":
        name, serial = value
        return FrozenConstant(name, int(serial))
    raise ValidationError(f"unknown term kind {key!r}")


# -- atoms / literals / rules -----------------------------------------------------
def atom_to_dict(atom: Atom) -> dict[str, Any]:
    return {"pred": atom.predicate, "args": [term_to_dict(t) for t in atom.args]}


def atom_from_dict(data: dict[str, Any]) -> Atom:
    try:
        pred = data["pred"]
        args = data["args"]
    except KeyError as missing:
        raise ValidationError(f"atom object missing key {missing}") from None
    return Atom(pred, tuple(term_from_dict(t) for t in args))


def literal_to_dict(literal: Literal) -> dict[str, Any]:
    out = atom_to_dict(literal.atom)
    if not literal.positive:
        out["neg"] = True
    return out


def literal_from_dict(data: dict[str, Any]) -> Literal:
    negated = bool(data.get("neg", False))
    atom = atom_from_dict({k: v for k, v in data.items() if k != "neg"})
    return Literal(atom, positive=not negated)


def rule_to_dict(rule: Rule) -> dict[str, Any]:
    return {
        "head": atom_to_dict(rule.head),
        "body": [literal_to_dict(lit) for lit in rule.body],
    }


def rule_from_dict(data: dict[str, Any]) -> Rule:
    return Rule(
        atom_from_dict(data["head"]),
        [literal_from_dict(lit) for lit in data.get("body", [])],
    )


# -- programs ------------------------------------------------------------------------
def program_to_dict(program: Program) -> dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "rules": [rule_to_dict(r) for r in program.rules],
    }


def program_from_dict(data: dict[str, Any]) -> Program:
    _check_format(data)
    return Program([rule_from_dict(r) for r in data.get("rules", [])])


def program_to_json(program: Program, indent: int | None = None) -> str:
    return json.dumps(program_to_dict(program), indent=indent)


def program_from_json(text: str) -> Program:
    return program_from_dict(json.loads(text))


# -- databases ----------------------------------------------------------------------
def database_to_dict(db: "Database") -> dict[str, Any]:
    facts: dict[str, list[list[dict[str, Any]]]] = {}
    for pred in sorted(db.predicates):
        # decode_row: serialization is an output boundary -- columnar
        # databases hand back Terms here, the row backend is identity.
        rows = sorted(
            (db.decode_row(row) for row in db.tuples(pred)),
            key=lambda row: [str(t) for t in row],
        )
        facts[pred] = [[term_to_dict(t) for t in row] for row in rows]
    return {"format": FORMAT_VERSION, "facts": facts}


def database_from_dict(data: dict[str, Any]) -> "Database":
    from ..data.database import Database

    _check_format(data)
    db = Database()
    for pred, rows in data.get("facts", {}).items():
        for row in rows:
            db._add_row(pred, tuple(term_from_dict(t) for t in row))
    return db


def database_to_json(db: "Database", indent: int | None = None) -> str:
    return json.dumps(database_to_dict(db), indent=indent)


def database_from_json(text: str) -> "Database":
    return database_from_dict(json.loads(text))


def _check_format(data: dict[str, Any]) -> None:
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported serialization format {version!r}; this build reads format {FORMAT_VERSION}"
        )
