"""JSON-serializable representations of programs, rules, and databases.

Tooling around the optimizer (result caches, experiment manifests,
cross-process pipelines) needs a stable interchange format.  The schema
is deliberately simple and versioned:

* a term is ``{"var": name}``, ``{"int": n}``, ``{"str": s}``,
  ``{"null": id}`` or ``{"frozen": [name, serial]}``;
* an atom is ``{"pred": name, "args": [term, ...]}``;
* a literal adds ``"neg": true`` when negated;
* a rule is ``{"head": atom, "body": [literal, ...]}``;
* a program is ``{"format": 1, "rules": [rule, ...]}``;
* a database is format **2** and carries its storage backend:

  - ``{"format": 2, "backend": "rows",
    "facts": {pred: [[term, ...], ...]}}`` for the row backend;
  - ``{"format": 2, "backend": "columnar", "symbols": [term, ...],
    "facts": {pred: [[i, ...], ...]}}`` for the columnar backend, where
    each row is a list of indexes into ``symbols`` (a *local* dense
    remap of the process-wide
    :class:`~repro.data.columnar.SymbolTable`, assigned in row order so
    the document is deterministic and independent of global intern
    order).  Loading interns the symbols into the live table and stores
    int rows directly, so a columnar database round-trips without
    degrading to the row backend.

  Format-1 database documents (no backend tag) are still read and
  produce a row-backend database.

Round-trip guarantees are covered by tests; unknown keys raise
:class:`~repro.errors.ValidationError` so schema drift fails loudly.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from ..errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - break the lang -> data import cycle
    from ..data.database import Database
from .atoms import Atom, Literal
from .programs import Program
from .rules import Rule
from .terms import Constant, FrozenConstant, Null, Term, Variable

FORMAT_VERSION = 1

#: Database documents are versioned separately from programs: format 2
#: added the ``backend`` tag and the columnar ``symbols`` section.
DATABASE_FORMAT_VERSION = 2


# -- terms ----------------------------------------------------------------------
def term_to_dict(term: Term) -> dict[str, Any]:
    if isinstance(term, Variable):
        return {"var": term.name}
    if isinstance(term, Constant):
        key = "int" if isinstance(term.value, int) else "str"
        return {key: term.value}
    if isinstance(term, Null):
        return {"null": term.ident}
    if isinstance(term, FrozenConstant):
        return {"frozen": [term.name, term.serial]}
    raise ValidationError(f"cannot serialize term {term!r}")


def term_from_dict(data: dict[str, Any]) -> Term:
    if len(data) != 1:
        raise ValidationError(f"malformed term object: {data!r}")
    ((key, value),) = data.items()
    if key == "var":
        return Variable(value)
    if key == "int":
        return Constant(int(value))
    if key == "str":
        return Constant(str(value))
    if key == "null":
        return Null(int(value))
    if key == "frozen":
        name, serial = value
        return FrozenConstant(name, int(serial))
    raise ValidationError(f"unknown term kind {key!r}")


# -- atoms / literals / rules -----------------------------------------------------
def atom_to_dict(atom: Atom) -> dict[str, Any]:
    return {"pred": atom.predicate, "args": [term_to_dict(t) for t in atom.args]}


def atom_from_dict(data: dict[str, Any]) -> Atom:
    try:
        pred = data["pred"]
        args = data["args"]
    except KeyError as missing:
        raise ValidationError(f"atom object missing key {missing}") from None
    return Atom(pred, tuple(term_from_dict(t) for t in args))


def literal_to_dict(literal: Literal) -> dict[str, Any]:
    out = atom_to_dict(literal.atom)
    if not literal.positive:
        out["neg"] = True
    return out


def literal_from_dict(data: dict[str, Any]) -> Literal:
    negated = bool(data.get("neg", False))
    atom = atom_from_dict({k: v for k, v in data.items() if k != "neg"})
    return Literal(atom, positive=not negated)


def rule_to_dict(rule: Rule) -> dict[str, Any]:
    return {
        "head": atom_to_dict(rule.head),
        "body": [literal_to_dict(lit) for lit in rule.body],
    }


def rule_from_dict(data: dict[str, Any]) -> Rule:
    return Rule(
        atom_from_dict(data["head"]),
        [literal_from_dict(lit) for lit in data.get("body", [])],
    )


# -- programs ------------------------------------------------------------------------
def program_to_dict(program: Program) -> dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "rules": [rule_to_dict(r) for r in program.rules],
    }


def program_from_dict(data: dict[str, Any]) -> Program:
    _check_format(data)
    return Program([rule_from_dict(r) for r in data.get("rules", [])])


def program_to_json(program: Program, indent: int | None = None) -> str:
    return json.dumps(program_to_dict(program), indent=indent)


def program_from_json(text: str) -> Program:
    return program_from_dict(json.loads(text))


# -- databases ----------------------------------------------------------------------
def database_to_dict(db: "Database") -> dict[str, Any]:
    if db.backend == "columnar":
        return _columnar_to_dict(db)
    facts: dict[str, list[list[dict[str, Any]]]] = {}
    for pred in sorted(db.predicates):
        # decode_row: serialization is an output boundary -- columnar
        # databases hand back Terms here, the row backend is identity.
        rows = sorted(
            (db.decode_row(row) for row in db.tuples(pred)),
            key=lambda row: [str(t) for t in row],
        )
        facts[pred] = [[term_to_dict(t) for t in row] for row in rows]
    return {"format": DATABASE_FORMAT_VERSION, "backend": db.backend, "facts": facts}


def _columnar_to_dict(db: "Database") -> dict[str, Any]:
    """Columnar document: int rows over a local dense symbol list.

    The local ids are assigned in (sorted) row order, so two databases
    holding the same atoms serialize to the same document even when the
    process-wide SymbolTable interned their constants in different
    orders (e.g. an uninterrupted run vs. a resumed one).
    """
    symbols: list[dict[str, Any]] = []
    local: dict[Any, int] = {}

    def local_id(term) -> int:
        ident = local.get(term)
        if ident is None:
            ident = len(symbols)
            local[term] = ident
            symbols.append(term_to_dict(term))
        return ident

    facts: dict[str, list[list[int]]] = {}
    for pred in sorted(db.predicates):
        rows = sorted(
            (db.decode_row(row) for row in db.tuples(pred)),
            key=lambda row: [str(t) for t in row],
        )
        facts[pred] = [[local_id(t) for t in row] for row in rows]
    return {
        "format": DATABASE_FORMAT_VERSION,
        "backend": "columnar",
        "symbols": symbols,
        "facts": facts,
    }


def database_from_dict(data: dict[str, Any]) -> "Database":
    from ..data.database import Database

    version = data.get("format")
    if version == FORMAT_VERSION:
        # Legacy format-1 database document: rows backend, no tag.
        backend = "rows"
    elif version == DATABASE_FORMAT_VERSION:
        backend = data.get("backend", "rows")
        if backend not in ("rows", "columnar"):
            raise ValidationError(f"unknown database backend {backend!r}")
    else:
        raise ValidationError(
            f"unsupported serialization format {version!r}; this build reads "
            f"database formats {FORMAT_VERSION} and {DATABASE_FORMAT_VERSION}"
        )
    db = Database(backend=backend)
    if backend == "columnar":
        # Intern the local symbol list into the live process-wide table;
        # rows then store straight through as already-encoded ints.
        interned = [db.store_term(term_from_dict(t)) for t in data.get("symbols", [])]
        for pred, rows in data.get("facts", {}).items():
            for row in rows:
                try:
                    encoded = tuple(interned[i] for i in row)
                except (IndexError, TypeError) as bad:
                    raise ValidationError(
                        f"columnar row {row!r} of {pred} references an unknown "
                        f"symbol index"
                    ) from bad
                db._add_row(pred, encoded)
        return db
    for pred, rows in data.get("facts", {}).items():
        for row in rows:
            db._add_row(pred, tuple(term_from_dict(t) for t in row))
    return db


def database_to_json(db: "Database", indent: int | None = None) -> str:
    return json.dumps(database_to_dict(db), indent=indent)


def database_from_json(text: str) -> "Database":
    return database_from_dict(json.loads(text))


def _check_format(data: dict[str, Any]) -> None:
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported serialization format {version!r}; this build reads format {FORMAT_VERSION}"
        )
