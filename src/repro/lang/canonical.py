"""Canonical forms: variable normalization and rule/program isomorphism.

Section VII notes that the result of minimization "is not necessarily
unique (i.e., it may depend upon the order in which atoms and rules are
considered)" -- but distinct outputs are often the *same rule up to
variable renaming*.  Comparing optimizer outputs, deduplicating rule
sets, and caching containment results all need equality modulo renaming,
which this module provides:

* :func:`canonicalize_rule` -- rename variables to ``v0, v1, ...`` in
  first-occurrence order (head first, then body left to right);
  two rules are *renamings* of each other iff their canonical forms are
  equal.
* :func:`rules_isomorphic` / :func:`programs_isomorphic` -- equality
  modulo variable renaming (for programs: as multisets of canonical
  rules; body-literal order still matters, as it does everywhere else
  in the library).
* :func:`canonicalize_program` -- canonicalize every rule and sort
  deterministically, giving a normal form usable as a cache key.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

from .atoms import Literal
from .programs import Program
from .rules import Rule
from .terms import Term, Variable


def _occurrence_order(rule: Rule) -> Iterator[Term]:
    yield from rule.head.args
    for literal in rule.body:
        yield from literal.atom.args


def canonical_renaming(rule: Rule) -> dict[Variable, Variable]:
    """The renaming onto ``v0, v1, ...`` in first-occurrence order."""
    mapping: dict[Variable, Variable] = {}
    for term in _occurrence_order(rule):
        if isinstance(term, Variable) and term not in mapping:
            mapping[term] = Variable(f"v{len(mapping)}")
    return mapping


def canonicalize_rule(rule: Rule) -> Rule:
    """The rule with variables renamed to the canonical ``v<i>`` scheme.

    Canonicalization is idempotent, and two rules have equal canonical
    forms iff one is a variable-renaming of the other.
    """
    return rule.substitute(canonical_renaming(rule))


def rules_isomorphic(left: Rule, right: Rule) -> bool:
    """Equality modulo variable renaming (atom order still significant)."""
    return canonicalize_rule(left) == canonicalize_rule(right)


def canonicalize_program(program: Program) -> Program:
    """Canonicalize each rule and order rules deterministically.

    The result is a normal form: programs that differ only in variable
    names and rule order canonicalize identically.  Note that canonical
    forms may merge rules that become syntactically equal.
    """
    canonical = sorted((canonicalize_rule(r) for r in program.rules), key=str)
    return Program(canonical)


def programs_isomorphic(left: Program, right: Program) -> bool:
    """Whether two programs are equal modulo variable renaming and rule order."""
    return canonicalize_program(left) == canonicalize_program(right)


def canonical_program_key(program: Program) -> str:
    """A stable digest of the program's isomorphism class.

    Two programs that differ only in variable names and rule order hash
    identically, so the key addresses the *prepared-program cache
    entry*: adornment closures (``engine/magic.py``), planner hints
    (``engine/compile.py``), and plan certificates
    (``analysis/specialize``) are all keyed by it.
    """
    text = "\n".join(str(rule) for rule in canonicalize_program(program).rules)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def modulo_body_order(rule: Rule) -> Rule:
    """A body-order-insensitive canonical form.

    Sorts body literals by their rendering *after* canonicalizing, then
    re-canonicalizes so the variable numbering matches the new order.
    Fixed point is reached in a bounded number of alternations; two
    rules that differ only in body order and variable names usually --
    though not always, since sorting keys depend on the interim
    numbering -- normalize identically.  Use for deduplication
    heuristics, not as a decision procedure (rule isomorphism modulo
    body order is GI-hard in general).
    """
    current = canonicalize_rule(rule)
    for _ in range(4):
        reordered = Rule(
            current.head,
            sorted(current.body, key=lambda lit: (lit.predicate, str(lit))),
        )
        renamed = canonicalize_rule(reordered)
        if renamed == current:
            break
        current = renamed
    return current
