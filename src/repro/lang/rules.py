"""Datalog rules.

A :class:`Rule` is ``head :- body`` where the head is a single atom and
the body is a conjunction of literals (all positive in the paper's core
fragment).  Rules validate the paper's standing assumption on
construction: *every variable in the head must also appear in the body*
(Section II).  Rules with an empty body are allowed only when the head
is ground, matching the paper's convention.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import UnsafeRuleError
from .atoms import Atom, Literal
from .terms import Term, Variable


def _as_literal(item: Atom | Literal) -> Literal:
    if isinstance(item, Literal):
        return item
    return Literal(item)


@dataclass(frozen=True)
class Rule:
    """A Horn rule ``head :- body``.

    ``body`` stores :class:`Literal` objects so the stratified-negation
    extension can reuse the same type; the positive-program algorithms
    access :meth:`body_atoms`, which requires all literals positive.
    """

    head: Atom
    body: tuple[Literal, ...]
    _variables: frozenset[Variable] = field(init=False, repr=False, compare=False, hash=False)

    def __init__(self, head: Atom, body: Sequence[Atom | Literal] = ()):
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(_as_literal(b) for b in body))
        object.__setattr__(self, "_variables", self._collect_variables())
        self._check_safety()

    def _collect_variables(self) -> frozenset[Variable]:
        out: set[Variable] = set(self.head.variables())
        for literal in self.body:
            out.update(literal.atom.variables())
        return frozenset(out)

    def _check_safety(self) -> None:
        positive_vars: set[Variable] = set()
        for literal in self.body:
            if literal.positive:
                positive_vars.update(literal.atom.variables())
        missing = set(self.head.variables()) - positive_vars
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise UnsafeRuleError(
                f"head variable(s) {names} of rule '{self}' do not appear in a positive body atom"
            )
        for literal in self.body:
            if not literal.positive:
                loose = literal.atom.variable_set() - positive_vars
                if loose:
                    names = ", ".join(sorted(v.name for v in loose))
                    raise UnsafeRuleError(
                        f"variable(s) {names} of negated literal '{literal}' are not bound "
                        f"by a positive body atom in rule '{self}'"
                    )

    # -- basic accessors -----------------------------------------------------
    @property
    def is_fact(self) -> bool:
        """``True`` iff the rule has an empty body (hence a ground head)."""
        return not self.body

    @property
    def is_positive(self) -> bool:
        """``True`` iff no body literal is negated."""
        return all(lit.positive for lit in self.body)

    def body_atoms(self) -> tuple[Atom, ...]:
        """The body as plain atoms; requires a positive rule."""
        if not self.is_positive:
            raise UnsafeRuleError(f"rule '{self}' has negated literals; body_atoms() requires a positive rule")
        return tuple(lit.atom for lit in self.body)

    def positive_atoms(self) -> Iterator[Atom]:
        """Yield the atoms of positive body literals."""
        for literal in self.body:
            if literal.positive:
                yield literal.atom

    def negative_atoms(self) -> Iterator[Atom]:
        """Yield the atoms of negated body literals."""
        for literal in self.body:
            if not literal.positive:
                yield literal.atom

    def variables(self) -> frozenset[Variable]:
        """All distinct variables of the rule."""
        return self._variables

    def predicates(self) -> frozenset[str]:
        """All predicate names used in the rule (head and body)."""
        return frozenset(itertools.chain((self.head.predicate,), (lit.predicate for lit in self.body)))

    def body_predicates(self) -> frozenset[str]:
        return frozenset(lit.predicate for lit in self.body)

    # -- transformation --------------------------------------------------------
    def substitute(self, mapping: Mapping[Variable, Term]) -> "Rule":
        """Apply a variable mapping to the whole rule.

        The result must still be safe; substituting every head variable
        by a ground term always is.
        """
        return Rule(self.head.substitute(mapping), [lit.substitute(mapping) for lit in self.body])

    def rename_variables(self, suffix: str) -> "Rule":
        """Rename every variable ``v`` to ``v<suffix>`` (renaming apart)."""
        mapping = {v: Variable(v.name + suffix) for v in self._variables}
        return self.substitute(mapping)

    def without_body_literal(self, index: int) -> "Rule":
        """The rule with the *index*-th body literal removed.

        Raises :class:`UnsafeRuleError` if the removal would strand a
        head variable -- by the paper's assumption such an atom can
        never be redundant, and the minimization algorithm skips it.
        """
        if not 0 <= index < len(self.body):
            raise IndexError(f"rule has {len(self.body)} body literals, no index {index}")
        new_body = self.body[:index] + self.body[index + 1:]
        return Rule(self.head, new_body)

    def can_drop_body_literal(self, index: int) -> bool:
        """Whether dropping the literal keeps the rule safe."""
        remaining: set[Variable] = set()
        for i, literal in enumerate(self.body):
            if i != index and literal.positive:
                remaining.update(literal.atom.variables())
        if not set(self.head.variables()) <= remaining:
            return False
        for i, literal in enumerate(self.body):
            if i != index and not literal.positive:
                if not literal.atom.variable_set() <= remaining:
                    return False
        return True

    def with_body(self, body: Iterable[Atom | Literal]) -> "Rule":
        """A copy of the rule with a replaced body."""
        return Rule(self.head, list(body))

    # -- presentation -----------------------------------------------------------
    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        inner = ", ".join(str(lit) for lit in self.body)
        return f"{self.head} :- {inner}."

    def __repr__(self) -> str:
        return f"Rule({self.head!r}, {list(self.body)!r})"

    def __hash__(self) -> int:
        return hash((self.head, self.body))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Rule):
            return NotImplemented
        return self.head == other.head and self.body == other.body
