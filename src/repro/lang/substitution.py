"""Substitutions, matching and unification.

Three related operations appear throughout the paper:

* **instantiation** -- applying a substitution that maps variables to
  ground terms (Section III: rules deduce facts by instantiating their
  variables to constants);

* **matching** -- one-way unification of a pattern atom (with
  variables) against a ground fact; this is the inner step of bottom-up
  evaluation and of tgd-violation search;

* **unification** -- two-way, as used in the Fig. 3 preservation
  procedure ("unify each atom with the head of the rule chosen for
  it").  Since there are no function symbols, unification is a simple
  variable-binding walk; no occurs check is needed beyond
  variable-to-variable chains.

:class:`Substitution` is a persistent (immutable) mapping: ``bind``
returns an extended copy, which makes backtracking joins and chase
search trivially correct.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional

from .atoms import Atom
from .terms import Term, Variable


class Substitution(Mapping[Variable, Term]):
    """An immutable mapping from variables to terms.

    Supports the usual mapping protocol plus :meth:`bind` /
    :meth:`bind_many` (functional extension), :meth:`apply_term` /
    :meth:`apply_atom` (application), and :meth:`compose`.
    """

    __slots__ = ("_map",)

    def __init__(self, mapping: Mapping[Variable, Term] | None = None):
        self._map: dict[Variable, Term] = dict(mapping) if mapping else {}

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, key: Variable) -> Term:
        return self._map[key]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __eq__(self, other) -> bool:
        if isinstance(other, Substitution):
            return self._map == other._map
        if isinstance(other, Mapping):
            return self._map == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._map.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}: {t}" for v, t in sorted(self._map.items(), key=lambda kv: kv[0].name))
        return f"Substitution({{{inner}}})"

    # -- construction ------------------------------------------------------
    @classmethod
    def empty(cls) -> "Substitution":
        return cls()

    def bind(self, var: Variable, term: Term) -> "Substitution":
        """Return a copy of ``self`` with ``var -> term`` added.

        If ``var`` is already bound to a *different* term the binding is
        inconsistent and ``ValueError`` is raised; callers performing
        search should test with :meth:`consistent_with` or use
        :func:`match_atom` instead.
        """
        existing = self._map.get(var)
        if existing is not None:
            if existing == term:
                return self
            raise ValueError(f"variable {var} already bound to {existing}, cannot rebind to {term}")
        new = Substitution.__new__(Substitution)
        new._map = {**self._map, var: term}
        return new

    def bind_many(self, pairs: Mapping[Variable, Term]) -> "Substitution":
        """Extend with several bindings at once (same rules as :meth:`bind`)."""
        out = self
        for var, term in pairs.items():
            out = out.bind(var, term)
        return out

    # -- application -------------------------------------------------------
    def apply_term(self, term: Term) -> Term:
        """Resolve *term* through the substitution (single step).

        Bindings produced by matching map variables directly to ground
        terms, so no chain-following is needed there; :func:`unify_atoms`
        resolves chains eagerly, keeping this single-step application
        sound for both use cases.
        """
        if isinstance(term, Variable):
            return self._map.get(term, term)
        return term

    def apply_atom(self, atom: Atom) -> Atom:
        """Apply the substitution to every argument of *atom*."""
        return Atom(atom.predicate, tuple(self.apply_term(t) for t in atom.args))

    def compose(self, other: "Substitution") -> "Substitution":
        """Return the substitution equivalent to applying ``self`` then *other*.

        ``(self.compose(other)).apply_atom(a) ==
        other.apply_atom(self.apply_atom(a))`` for all atoms ``a`` whose
        variables are in the domain of the two substitutions.
        """
        merged: dict[Variable, Term] = {v: other.apply_term(t) for v, t in self._map.items()}
        for var, term in other.items():
            merged.setdefault(var, term)
        new = Substitution.__new__(Substitution)
        new._map = merged
        return new

    def restrict(self, variables) -> "Substitution":
        """The substitution restricted to the given variables."""
        wanted = set(variables)
        new = Substitution.__new__(Substitution)
        new._map = {v: t for v, t in self._map.items() if v in wanted}
        return new

    def is_ground(self) -> bool:
        """``True`` iff every binding target is a ground term."""
        return all(t.is_ground for t in self._map.values())


def match_atom(pattern: Atom, fact: Atom, subst: Substitution | None = None) -> Optional[Substitution]:
    """One-way match of *pattern* (may contain variables) against *fact*.

    Ground arguments of the pattern must equal the corresponding fact
    argument; variables are bound (consistently with *subst* and with
    repeated occurrences).  Returns the extended substitution, or
    ``None`` if the match fails.

    The fact is typically ground, but the function only requires that
    its terms be acceptable binding targets, so it also works when
    matching against atoms containing nulls or frozen constants.
    """
    if pattern.predicate != fact.predicate or pattern.arity != fact.arity:
        return None
    bindings: dict[Variable, Term] = dict(subst._map) if subst is not None else {}
    extended = False
    for pat_term, fact_term in zip(pattern.args, fact.args):
        if isinstance(pat_term, Variable):
            bound = bindings.get(pat_term)
            if bound is None:
                bindings[pat_term] = fact_term
                extended = True
            elif bound != fact_term:
                return None
        elif pat_term != fact_term:
            return None
    if not extended and subst is not None:
        return subst
    result = Substitution.__new__(Substitution)
    result._map = bindings
    return result


def unify_atoms(left: Atom, right: Atom, subst: Substitution | None = None) -> Optional[Substitution]:
    """Two-way unification of two atoms (no function symbols).

    Returns a most-general unifier extending *subst*, or ``None``.
    Variable-to-variable chains are resolved eagerly so the resulting
    substitution can be applied in a single step.
    """
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    bindings: dict[Variable, Term] = dict(subst._map) if subst is not None else {}

    def resolve(term: Term) -> Term:
        while isinstance(term, Variable) and term in bindings:
            term = bindings[term]
        return term

    for l_term, r_term in zip(left.args, right.args):
        l_res = resolve(l_term)
        r_res = resolve(r_term)
        if l_res == r_res:
            continue
        if isinstance(l_res, Variable):
            bindings[l_res] = r_res
        elif isinstance(r_res, Variable):
            bindings[r_res] = l_res
        else:
            return None

    # Normalize: resolve chains so apply_term is single-step sound.
    normalized = {var: resolve(var) for var in bindings}
    result = Substitution.__new__(Substitution)
    result._map = normalized
    return result
