"""Atoms and literals.

An :class:`Atom` is a predicate applied to terms, e.g. ``G(x, 3)``.
A :class:`Literal` wraps an atom with a polarity; negative literals are
used only by the stratified-negation extension (the paper's announced
follow-up work) -- the core algorithms of the paper deal in positive
atoms throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..errors import GroundnessError
from .terms import Constant, Term, Variable, term_sort_key


def coerce_term(value) -> Term:
    """Coerce a Python value to a :class:`Term`.

    ``int`` and ``str`` become :class:`Constant`; term instances pass
    through unchanged.  Variables must be constructed explicitly (or via
    the :func:`repro.lang.variables` convenience helper) -- implicit
    string-to-variable coercion would be too error-prone.
    """
    if isinstance(value, (int, str)):
        return Constant(value)
    if isinstance(value, (Variable,)) or getattr(value, "is_ground", None) is not None:
        return value
    raise TypeError(f"cannot use {value!r} as a Datalog term")


@dataclass(frozen=True, slots=True)
class Atom:
    """A predicate applied to a tuple of terms.

    Atoms are immutable and hashable; a ground atom (all arguments
    ground) doubles as a database fact.
    """

    predicate: str
    args: tuple[Term, ...]

    @classmethod
    def of(cls, predicate: str, *args) -> "Atom":
        """Build an atom, coercing ``int``/``str`` arguments to constants.

        >>> Atom.of("A", 1, Variable("x"))
        Atom('A', (Constant(1), Variable('x')))
        """
        return cls(predicate, tuple(coerce_term(a) for a in args))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def is_ground(self) -> bool:
        """``True`` iff no argument is a variable.

        Nulls and frozen constants count as ground (Section VIII: atoms
        with nulls are viewed as ground atoms).
        """
        return all(t.is_ground for t in self.args)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of the atom, left to right, with repeats."""
        for term in self.args:
            if isinstance(term, Variable):
                yield term

    def variable_set(self) -> frozenset[Variable]:
        """The set of distinct variables appearing in the atom."""
        return frozenset(self.variables())

    def constants(self) -> Iterator[Term]:
        """Yield the ground arguments (constants, nulls, frozen constants)."""
        for term in self.args:
            if term.is_ground:
                yield term

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Atom":
        """Apply a variable-to-term mapping, returning a new atom."""
        return Atom(
            self.predicate,
            tuple(mapping.get(t, t) if isinstance(t, Variable) else t for t in self.args),
        )

    def require_ground(self) -> "Atom":
        """Return ``self`` if ground, else raise :class:`GroundnessError`."""
        if not self.is_ground:
            raise GroundnessError(f"atom {self} is not ground")
        return self

    def sort_key(self) -> tuple:
        """Deterministic total order over atoms (for stable printing)."""
        return (self.predicate, self.arity, tuple(term_sort_key(t) for t in self.args))

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.args)
        return f"{self.predicate}({inner})"

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {self.args!r})"


@dataclass(frozen=True, slots=True)
class Literal:
    """An atom with a polarity.

    Positive literals are ordinary body atoms.  Negative literals
    (``not P(x)``) are accepted only by the stratified-negation engine;
    the paper's optimization algorithms operate on positive programs.
    """

    atom: Atom
    positive: bool = True

    @property
    def predicate(self) -> str:
        return self.atom.predicate

    @property
    def args(self) -> tuple[Term, ...]:
        return self.atom.args

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Literal":
        return Literal(self.atom.substitute(mapping), self.positive)

    def negated(self) -> "Literal":
        """The literal with opposite polarity."""
        return Literal(self.atom, not self.positive)

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"

    def __repr__(self) -> str:
        sign = "" if self.positive else ", positive=False"
        return f"Literal({self.atom!r}{sign})"


def atoms_variables(atoms: Iterable[Atom]) -> frozenset[Variable]:
    """The set of variables appearing in any of *atoms*."""
    out: set[Variable] = set()
    for atom in atoms:
        out.update(atom.variables())
    return frozenset(out)
