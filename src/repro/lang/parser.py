"""Parser for Datalog programs and tuple-generating dependencies.

The concrete syntax follows the paper's conventions:

* **predicates** are identifiers beginning with an uppercase letter:
  ``G``, ``Anc``;
* **variables** are identifiers beginning with a lowercase letter or
  underscore: ``x``, ``y1``, ``w``;
* **constants** are integers (``3``, ``-10``) or quoted strings
  (``'alice'``);
* a **rule** is ``Head :- Atom, ..., Atom.`` and a **fact** is a ground
  atom followed by ``.``;
* a **negated literal** (stratified extension only) is written
  ``not Atom`` or ``!Atom``;
* a **tgd** is ``Atom, ... -> Atom & Atom`` -- commas and ``&`` are
  interchangeable conjunction separators on both sides (the paper
  writes the right-hand side with ``∧``);
* comments run from ``%`` or ``#`` to the end of the line.

Example::

    % transitive closure (paper, Example 1)
    G(x, z) :- A(x, z).
    G(x, z) :- G(x, y), G(y, z).

All entry points raise :class:`~repro.errors.ParseError` with a line and
column on malformed input.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Mapping

from ..errors import ParseError
from .atoms import Atom, Literal
from .programs import Program
from .rules import Rule
from .terms import Constant, Term, Variable

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>[%\#][^\n]*)
  | (?P<arrow>->)
  | (?P<implies>:-)
  | (?P<int>-?\d+)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[(),.&!])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int


@dataclass(frozen=True)
class SourceSpan:
    """The 1-based source extent of one parsed rule (inclusive)."""

    line: int
    column: int
    end_line: int
    end_column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class ParsedProgram:
    """A program plus the source span of each distinct rule.

    ``spans`` maps every rule of ``program`` to the span of its *first*
    occurrence in the source (a :class:`~repro.lang.programs.Program`
    drops duplicate rules, so later occurrences have no representative).
    """

    program: Program
    spans: Mapping[Rule, SourceSpan]


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens, skipping whitespace and comments.

    Raises :class:`ParseError` on any character outside the grammar.
    """
    line = 1
    line_start = 0
    pos = 0
    length = len(source)
    while pos < length:
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError(f"unexpected character {source[pos]!r}", line, column)
        kind = match.lastgroup or ""
        text = match.group()
        if kind == "ws":
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = pos + text.rfind("\n") + 1
        elif kind != "comment":
            yield Token(kind, text, line, pos - line_start + 1)
        pos = match.end()
    yield Token("eof", "", line, pos - line_start + 1)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, source: str):
        self.tokens = list(tokenize(source))
        self.index = 0

    # -- token plumbing ------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise ParseError(
                f"expected {wanted!r} but found {token.text or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def at_punct(self, text: str) -> bool:
        return self.current.kind == "punct" and self.current.text == text

    def accept_punct(self, text: str) -> bool:
        if self.at_punct(text):
            self.advance()
            return True
        return False

    # -- grammar ---------------------------------------------------------------
    def parse_term(self) -> Term:
        token = self.current
        if token.kind == "int":
            self.advance()
            return Constant(int(token.text))
        if token.kind == "string":
            self.advance()
            raw = token.text[1:-1]
            return Constant(raw.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\"))
        if token.kind == "name":
            self.advance()
            if token.text[0].isupper():
                raise ParseError(
                    f"{token.text!r} starts uppercase (a predicate name) where a term is expected; "
                    "variables start lowercase, symbolic constants are quoted",
                    token.line,
                    token.column,
                )
            return Variable(token.text)
        raise ParseError(
            f"expected a term but found {token.text or 'end of input'!r}", token.line, token.column
        )

    def parse_atom(self) -> Atom:
        token = self.expect("name")
        if not token.text[0].isupper():
            raise ParseError(
                f"predicate names start with an uppercase letter, found {token.text!r}",
                token.line,
                token.column,
            )
        self.expect("punct", "(")
        args: list[Term] = []
        if not self.at_punct(")"):
            args.append(self.parse_term())
            while self.accept_punct(","):
                args.append(self.parse_term())
        self.expect("punct", ")")
        return Atom(token.text, tuple(args))

    def parse_literal(self) -> Literal:
        if self.current.kind == "name" and self.current.text == "not":
            self.advance()
            return Literal(self.parse_atom(), positive=False)
        if self.accept_punct("!"):
            return Literal(self.parse_atom(), positive=False)
        return Literal(self.parse_atom())

    def parse_rule(self) -> Rule:
        head = self.parse_atom()
        body: list[Literal] = []
        if self.current.kind == "implies":
            self.advance()
            body.append(self.parse_literal())
            while self.accept_punct(","):
                body.append(self.parse_literal())
        self.expect("punct", ".")
        return Rule(head, body)

    def parse_program(self) -> Program:
        rules: list[Rule] = []
        while self.current.kind != "eof":
            rules.append(self.parse_rule())
        return Program(rules)

    def parse_conjunction(self) -> list[Atom]:
        atoms = [self.parse_atom()]
        while self.accept_punct(",") or self.accept_punct("&"):
            atoms.append(self.parse_atom())
        return atoms

    def parse_tgd(self):
        from ..core.tgds import Tgd

        lhs = self.parse_conjunction()
        self.expect("arrow")
        rhs = self.parse_conjunction()
        self.accept_punct(".")
        return Tgd(tuple(lhs), tuple(rhs))

    def parse_tgds(self):
        out = []
        while self.current.kind != "eof":
            out.append(self.parse_tgd())
        return out

    def finish(self) -> None:
        token = self.current
        if token.kind != "eof":
            raise ParseError(f"trailing input {token.text!r}", token.line, token.column)


def parse_program(source: str) -> Program:
    """Parse a whole program (zero or more rules/facts)."""
    parser = _Parser(source)
    program = parser.parse_program()
    parser.finish()
    return program


def parse_program_with_spans(source: str) -> ParsedProgram:
    """Parse a program and record where each rule sits in the source.

    The extra bookkeeping is one token lookup per rule; tools that point
    at findings (``repro-datalog lint``) use this entry point, everything
    else keeps :func:`parse_program`.
    """
    parser = _Parser(source)
    rules: list[Rule] = []
    spans: list[SourceSpan] = []
    while parser.current.kind != "eof":
        start = parser.current
        rules.append(parser.parse_rule())
        end = parser.tokens[parser.index - 1]  # the terminating "." token
        spans.append(SourceSpan(start.line, start.column, end.line, end.column))
    parser.finish()
    mapping: dict[Rule, SourceSpan] = {}
    for rule, span in zip(rules, spans):
        mapping.setdefault(rule, span)
    return ParsedProgram(Program(rules), mapping)


def parse_rule(source: str) -> Rule:
    """Parse exactly one rule or fact."""
    parser = _Parser(source)
    rule = parser.parse_rule()
    parser.finish()
    return rule


def parse_atom(source: str) -> Atom:
    """Parse exactly one atom (no trailing period)."""
    parser = _Parser(source)
    atom = parser.parse_atom()
    parser.finish()
    return atom


def parse_tgd(source: str):
    """Parse one tgd, e.g. ``G(x, z) -> A(x, w)``."""
    parser = _Parser(source)
    tgd = parser.parse_tgd()
    parser.finish()
    return tgd


def parse_tgds(source: str):
    """Parse a sequence of tgds (each optionally ``.``-terminated)."""
    parser = _Parser(source)
    tgds = parser.parse_tgds()
    parser.finish()
    return tgds
