"""Resource governance, graceful degradation, and fault injection.

The production counterpart of the paper's chase discipline: just as
``[P, T]`` runs under a :class:`~repro.core.chase.ChaseBudget` and
returns ``UNKNOWN`` instead of looping (Section VIII), every engine
runs under a :class:`ResourceGovernor` and returns a ``PARTIAL``
outcome -- a *sound under-approximation* of the minimal model, by
monotonicity -- instead of hanging.  See the module docstrings of
:mod:`~repro.resilience.governor`, :mod:`~repro.resilience.faults`,
:mod:`~repro.resilience.checkpoint`, and
:mod:`~repro.resilience.session` for the four layers.
"""

from __future__ import annotations

from .checkpoint import (
    CHECKPOINT_FORMAT,
    Checkpoint,
    CheckpointManager,
    ResumeState,
    corrupt_checkpoint,
    load_checkpoint,
    program_fingerprint,
    resume_evaluation,
)
from .faults import FAULT_OPERATIONS, FaultPlan, FaultyDatabase, InjectedFault
from .governor import (
    CancellationToken,
    DegradationReport,
    EvaluationStatus,
    ResourceGovernor,
    approximate_database_bytes,
)
from .session import EvaluationSession, RetryPolicy, SessionResult

__all__ = [
    "CHECKPOINT_FORMAT",
    "CancellationToken",
    "Checkpoint",
    "CheckpointManager",
    "DegradationReport",
    "EvaluationSession",
    "EvaluationStatus",
    "FAULT_OPERATIONS",
    "FaultPlan",
    "FaultyDatabase",
    "InjectedFault",
    "ResourceGovernor",
    "ResumeState",
    "RetryPolicy",
    "SessionResult",
    "corrupt_checkpoint",
    "load_checkpoint",
    "program_fingerprint",
    "resume_evaluation",
]
