"""Durable checkpoints and resumable fixpoints.

The governor (:mod:`repro.resilience.governor`) already turns an
interrupted evaluation into a *sound under-approximation* of ``M(P)``
-- the paper's monotonicity argument guarantees every fact a PARTIAL
run derived is in the minimal model.  This module makes that partial
state survive process death: a :class:`CheckpointManager` hangs off the
governor's round-boundary hook and writes a versioned, checksummed
snapshot of the mid-flight evaluation, and :func:`resume_evaluation`
continues the fixpoint from the saved frontier.

**Why resuming is correct.**  A checkpoint taken at the top of
semi-naive round *k* captures ``F_{k-1}`` (the full database) and
``Δ_{k-1}`` (the delta about to be processed), with the invariant
``F_{k-1} = snapshot ⊎ Δ_{k-1}``.  Re-entering the loop with exactly
that state replays round *k* and every later round unchanged, so the
resumed run converges to the same minimal model as the uninterrupted
one -- bitwise, not just semantically.  Engines without a persisted
frontier (naive, stratified) restart evaluation *on the checkpointed
database*: because ``db ⊆ M(P)`` implies ``P(db) = M(P)`` (monotonicity
plus idempotence; for stratified programs the same holds stratum by
stratum since lower strata recompute to the identical complete
relations), the restart also converges to the same model, merely
re-deriving more.

**Durability discipline.**  Writes are atomic: serialize to a temp file
in the target directory, ``fsync``, rotate the current generation to
``<path>.prev``, then ``os.replace`` the temp file into place.  A crash
at any point leaves at least one loadable generation.  Every file
carries a SHA-256 checksum over the canonical payload encoding;
:meth:`CheckpointManager.latest` skips generations that fail the
checksum (or fail to parse -- a torn write) and falls back to the
previous one, counting ``checkpoint.corrupt_skipped``.

The ``crash`` fault seam (:data:`repro.resilience.faults.FAULT_OPERATIONS`)
threads through :meth:`CheckpointManager.write` at three stages --
before the temp write, mid-write (leaving a torn temp file), and
between fsync and rename -- so chaos tests can kill an evaluation at
every dangerous instant and assert recovery.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from ..errors import CheckpointError
from ..lang.programs import Program
from ..lang.serialize import (
    database_from_dict,
    database_to_dict,
    program_from_dict,
    program_to_dict,
)
from ..obs.metrics import metrics_registry
from ..obs.tracer import trace

if TYPE_CHECKING:  # pragma: no cover
    from ..data.database import Database
    from ..engine.fixpoint import EvaluationResult
    from .faults import FaultPlan
    from .governor import ResourceGovernor

#: Checkpoint file format identifier; bump on incompatible change.
CHECKPOINT_FORMAT = "repro.checkpoint/1"

#: Suffix of the previous-generation file kept beside the live one.
PREVIOUS_SUFFIX = ".prev"

#: Suffix of the in-flight temp file (never loaded; may be torn).
TEMP_SUFFIX = ".tmp"


def program_fingerprint(program: Program) -> str:
    """SHA-256 over the canonical serialized program.

    Stored in every checkpoint and verified by ``resume`` so a snapshot
    is never resumed under a different program (which would silently
    compute the wrong model from the saved frontier).
    """
    canonical = json.dumps(
        program_to_dict(program), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _canonical_checksum(payload: dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class ResumeState:
    """The semi-naive frontier a resumed fixpoint re-enters with.

    ``database`` is ``F_{k-1}`` (full), ``delta`` is ``Δ_{k-1}``
    (⊆ database), ``round`` is *k* -- the round about to be processed
    when the checkpoint was taken.
    """

    database: "Database"
    delta: "Database"
    round: int


@dataclass
class Checkpoint:
    """One loaded (or about-to-be-written) evaluation snapshot."""

    program: Program
    engine: str
    backend: str
    database: "Database"
    round: Optional[int] = None
    delta: Optional["Database"] = None
    governor_state: Optional[dict[str, Any]] = None
    every: int = 1
    fingerprint: str = ""

    def __post_init__(self) -> None:
        if not self.fingerprint:
            self.fingerprint = program_fingerprint(self.program)

    def to_payload(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "backend": self.backend,
            "round": self.round,
            "every": self.every,
            "fingerprint": self.fingerprint,
            "program": program_to_dict(self.program),
            "governor": self.governor_state,
            "database": database_to_dict(self.database),
            "delta": None if self.delta is None else database_to_dict(self.delta),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Checkpoint":
        try:
            program = program_from_dict(payload["program"])
            database = database_from_dict(payload["database"])
            delta_doc = payload.get("delta")
            delta = None if delta_doc is None else database_from_dict(delta_doc)
            return cls(
                program=program,
                engine=payload["engine"],
                backend=payload["backend"],
                database=database,
                round=payload.get("round"),
                delta=delta,
                governor_state=payload.get("governor"),
                every=int(payload.get("every", 1)),
                fingerprint=payload.get("fingerprint", ""),
            )
        except (KeyError, TypeError, ValueError) as bad:
            raise CheckpointError(f"malformed checkpoint payload: {bad}") from bad

    def resume_state(self) -> Optional[ResumeState]:
        """The semi-naive frontier, if this snapshot carries one."""
        if self.engine != "seminaive" or self.delta is None or self.round is None:
            return None
        return ResumeState(database=self.database, delta=self.delta, round=self.round)


def load_checkpoint(path: str | os.PathLike) -> Checkpoint:
    """Load and verify one checkpoint file.

    Raises :class:`~repro.errors.CheckpointError` when the file is
    missing, unparseable (torn/truncated write), carries an unknown
    format, or fails its checksum (bit rot / partial overwrite).
    """
    path = Path(path)
    with trace("checkpoint.load", path=str(path)):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as bad:
            raise CheckpointError(f"cannot read checkpoint {path}: {bad}") from bad
        try:
            document = json.loads(text)
        except ValueError as bad:
            raise CheckpointError(
                f"checkpoint {path} is not valid JSON (torn or truncated write?)"
            ) from bad
        if not isinstance(document, dict) or document.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint {path} has format "
                f"{document.get('format') if isinstance(document, dict) else None!r}; "
                f"this build reads {CHECKPOINT_FORMAT}"
            )
        payload = document.get("payload")
        stored = document.get("sha256")
        if not isinstance(payload, dict) or not isinstance(stored, str):
            raise CheckpointError(f"checkpoint {path} is missing payload or checksum")
        actual = _canonical_checksum(payload)
        if actual != stored:
            raise CheckpointError(
                f"checkpoint {path} failed its checksum "
                f"(stored {stored[:12]}…, computed {actual[:12]}…)"
            )
        checkpoint = Checkpoint.from_payload(payload)
        metrics_registry().increment("checkpoint.loads")
        return checkpoint


class CheckpointManager:
    """Writes and recovers checkpoint generations for one evaluation.

    Args:
        path: the live checkpoint file.  The previous generation lives
            beside it at ``<path>.prev``; the in-flight temp file at
            ``<path>.tmp``.
        program: the program under evaluation (embedded in every
            snapshot; may be supplied later via :meth:`adopt`).
        engine: registered engine name recorded in the snapshot.
        every: write cadence in rounds (``round % every == 0`` writes).
        fault_plan: optional chaos schedule whose ``crash`` seam fires
            inside :meth:`write` (three stages per write).

    Wire :meth:`on_round` into a governor's ``on_round`` hook and every
    engine that calls ``governor.checkpoint(db, round=...)`` checkpoints
    for free; the semi-naive engine additionally passes its delta so
    the snapshot carries a resumable frontier.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        program: Program | None = None,
        engine: str | None = None,
        every: int = 1,
        fault_plan: "FaultPlan | None" = None,
    ):
        self.path = Path(path)
        self.program = program
        self.engine = engine
        self.every = max(1, int(every))
        self.fault_plan = fault_plan
        self.writes = 0

    @property
    def previous_path(self) -> Path:
        return self.path.with_name(self.path.name + PREVIOUS_SUFFIX)

    @property
    def temp_path(self) -> Path:
        return self.path.with_name(self.path.name + TEMP_SUFFIX)

    def adopt(self, checkpoint: Checkpoint, every: int | None = None) -> None:
        """Take program/engine/cadence from a loaded checkpoint, so a
        resumed run keeps checkpointing to the same file."""
        self.program = checkpoint.program
        self.engine = checkpoint.engine
        self.every = max(1, int(every if every is not None else checkpoint.every))

    # -- write path ------------------------------------------------------------
    def on_round(
        self,
        db: "Database",
        round: int | None,
        delta: "Database | None" = None,
        governor: "ResourceGovernor | None" = None,
    ) -> None:
        """Governor round-boundary hook: write every :attr:`every` rounds."""
        if round is None or round % self.every != 0:
            return
        self.write(db, round=round, delta=delta, governor=governor)

    def write(
        self,
        db: "Database",
        round: int | None = None,
        delta: "Database | None" = None,
        governor: "ResourceGovernor | None" = None,
    ) -> Checkpoint:
        """Atomically persist one snapshot; returns the Checkpoint.

        Write discipline (each numbered stage advances the ``crash``
        fault seam once, so chaos schedules can abort at any of them):

        1. before anything touches the filesystem;
        2. after half the payload bytes are written (a crash here
           leaves a *torn* temp file, which recovery never reads);
        3. after ``fsync``, before the rename pair (a crash here leaves
           a complete temp file that is likewise ignored -- only the
           rename publishes a generation).

        Rotation uses ``os.replace`` twice: current → ``.prev``, then
        temp → current.  Either rename is atomic, so every crash point
        leaves ``path`` or ``path.prev`` (or both) loadable.
        """
        if self.program is None or self.engine is None:
            raise CheckpointError(
                "CheckpointManager needs program and engine before writing "
                "(pass them to the constructor or adopt() a loaded checkpoint)"
            )
        governor_state = None
        if governor is not None:
            # rounds_seen was already incremented for the round being
            # checkpointed; a resumed run re-counts that round, so store
            # the pre-increment value to keep max_rounds cumulative.
            governor_state = {
                "facts": governor.facts_seen,
                "rounds": max(0, governor.rounds_seen - 1),
                "elapsed_s": governor.elapsed(),
            }
        checkpoint = Checkpoint(
            program=self.program,
            engine=self.engine,
            backend=db.backend,
            database=db,
            round=round,
            delta=delta,
            governor_state=governor_state,
            every=self.every,
        )
        payload = checkpoint.to_payload()
        document = {
            "format": CHECKPOINT_FORMAT,
            "sha256": _canonical_checksum(payload),
            "payload": payload,
        }
        data = json.dumps(document).encode("utf-8")
        plan = self.fault_plan
        with trace("checkpoint.write", round=round, bytes=len(data)) as span:
            if plan is not None:
                plan.before("crash")  # stage 1: nothing written yet
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with open(self.temp_path, "wb") as handle:
                    half = len(data) // 2
                    handle.write(data[:half])
                    if plan is not None:
                        try:
                            plan.before("crash")  # stage 2: torn write
                        except BaseException:
                            handle.flush()
                            raise
                    handle.write(data[half:])
                    handle.flush()
                    os.fsync(handle.fileno())
                if plan is not None:
                    plan.before("crash")  # stage 3: durable temp, not published
                if self.path.exists():
                    os.replace(self.path, self.previous_path)
                os.replace(self.temp_path, self.path)
                self._fsync_directory()
            except OSError as bad:
                metrics_registry().increment("checkpoint.write_failures")
                raise CheckpointError(
                    f"cannot write checkpoint {self.path}: {bad}"
                ) from bad
            self.writes += 1
            registry = metrics_registry()
            registry.increment("checkpoint.writes")
            registry.increment("checkpoint.bytes_written", len(data))
            if span:
                span.add("writes", self.writes)
        return checkpoint

    def _fsync_directory(self) -> None:
        """Make the rename pair durable (best effort off Linux)."""
        try:
            fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    # -- recovery path ---------------------------------------------------------
    def generations(self) -> tuple[Path, ...]:
        """Candidate files, newest first (live, then previous)."""
        return (self.path, self.previous_path)

    def latest(self) -> Optional[Checkpoint]:
        """The newest checkpoint that verifies, or ``None``.

        A generation that exists but fails verification (torn write,
        flipped byte, format drift) is *skipped* -- counted as
        ``checkpoint.corrupt_skipped`` -- and recovery falls back to
        the previous generation.
        """
        registry = metrics_registry()
        for candidate in self.generations():
            if not candidate.exists():
                continue
            try:
                return load_checkpoint(candidate)
            except CheckpointError:
                registry.increment("checkpoint.corrupt_skipped")
        return None


def corrupt_checkpoint(path: str | os.PathLike, mode: str = "flip") -> None:
    """Damage a checkpoint file in place (chaos tests / drills only).

    ``mode="flip"`` changes one digit inside the payload, keeping the
    file valid JSON so the *checksum* is what rejects it;
    ``mode="truncate"`` keeps only the first half of the bytes,
    simulating a torn write that breaks the JSON parse.
    """
    path = Path(path)
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: len(data) // 2])
        return
    if mode != "flip":
        raise ValueError(f"unknown corruption mode {mode!r}")
    anchor = data.find(b'"payload"')
    if anchor < 0:
        raise CheckpointError(f"{path} does not look like a checkpoint file")
    for index in range(anchor, len(data)):
        char = data[index : index + 1]
        if char.isdigit():
            flipped = b"1" if char != b"1" else b"2"
            path.write_bytes(data[:index] + flipped + data[index + 1 :])
            return
    raise CheckpointError(f"{path} holds no digit to flip in its payload")


def resume_evaluation(
    checkpoint: Checkpoint,
    governor: "ResourceGovernor | None" = None,
    database: "Database | None" = None,
    program: Program | None = None,
    workers: int = 1,
) -> "EvaluationResult":
    """Continue an interrupted evaluation from *checkpoint*.

    * ``seminaive`` snapshots carry the delta frontier and re-enter the
      differential loop at the saved round;
    * other fixpoint engines restart evaluation on the checkpointed
      database (sound and convergent -- see the module docstring).

    Args:
        governor: fresh limits for the resumed attempt; restore
            cumulative counters first via
            ``governor.restore(**checkpoint.governor_state)`` if wanted.
        database: override for the working database (the session layer
            passes a fault-wrapped copy here); defaults to the
            checkpoint's own.
        program: when given, verified against the stored fingerprint --
            a mismatch raises :class:`~repro.errors.CheckpointError`
            instead of silently computing the wrong model.
        workers: continue on this many worker processes.  Checkpoints
            record only barrier states, which serial and parallel runs
            share, so any worker count can resume any checkpoint.
    """
    from ..engine.fixpoint import evaluate, get_engine
    from ..engine.seminaive import seminaive_fixpoint

    if program is not None and program_fingerprint(program) != checkpoint.fingerprint:
        raise CheckpointError(
            "program fingerprint mismatch: the checkpoint was written by a "
            "different program than the one being resumed"
        )
    spec = get_engine(checkpoint.engine)
    if spec.kind != "fixpoint":
        raise CheckpointError(
            f"checkpoint engine {checkpoint.engine!r} is a {spec.kind} engine; "
            "only fixpoint evaluations are resumable"
        )
    db = database if database is not None else checkpoint.database
    metrics_registry().increment("checkpoint.resumes")
    state = checkpoint.resume_state()
    with trace("checkpoint.resume", engine=checkpoint.engine, round=checkpoint.round):
        if state is not None:
            if database is not None:
                state = ResumeState(
                    database=db, delta=state.delta, round=state.round
                )
            if workers > 1:
                from ..engine.parallel import parallel_seminaive_fixpoint

                return parallel_seminaive_fixpoint(
                    checkpoint.program,
                    db,
                    governor=governor,
                    workers=workers,
                    resume_state=state,
                )
            return seminaive_fixpoint(
                checkpoint.program, db, governor=governor, resume_state=state
            )
        return evaluate(
            checkpoint.program,
            db,
            engine=checkpoint.engine,
            governor=governor,
            workers=workers,
        )
