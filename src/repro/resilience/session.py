"""Retrying evaluation sessions: transient faults retried, limits honored.

:class:`EvaluationSession` is the production-shaped entry point that
composes the three resilience mechanisms:

* a :class:`~repro.resilience.governor.ResourceGovernor` bounding each
  attempt (reset per attempt -- the deadline is per-attempt, so a
  session's worst case is ``(max_retries + 1) * deadline`` plus
  backoff);
* a :class:`~repro.resilience.faults.FaultPlan` (tests/chaos drills)
  or any real backend raising
  :class:`~repro.errors.TransientStorageError`, retried under a
  :class:`RetryPolicy` with exponential backoff and *deterministic*
  seeded jitter;
* the engine registry (:mod:`repro.engine.fixpoint`), so one session
  class drives every engine, bottom-up or goal-directed.

Without a checkpoint manager, every attempt restarts from a pristine
copy of the input database -- a faulted attempt may have died mid-copy,
and Datalog evaluation is cheap to restart relative to reasoning about
resumable state.  With a
:class:`~repro.resilience.checkpoint.CheckpointManager` attached, the
session upgrades to **resume-from-checkpoint** retries: every attempt
writes durable round snapshots through the governor's ``on_round``
hook, and each attempt (including the first, which is how a freshly
constructed session recovers from a killed predecessor process) starts
from the latest valid checkpoint generation instead of the EDB -- work
done before a fault is never repeated.  Because the fault plan's
counters are shared across attempts, a one-shot (transient) fault
consumed in attempt *n* does not re-fire in attempt *n + 1*, while a
persistent fault keeps firing until retries are exhausted and then
surfaces as the typed error.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..errors import CheckpointError, ResourceLimitExceeded, TransientStorageError
from ..obs.metrics import metrics_registry
from ..obs.tracer import trace
from .checkpoint import CheckpointManager, resume_evaluation
from .faults import FaultPlan
from .governor import ResourceGovernor


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``delay(i) = base_delay_s * multiplier**i * (1 + jitter * u_i)``
    where ``u_i`` is the *i*-th draw of ``random.Random(seed)`` -- the
    same seed always produces the same backoff series, keeping chaos
    runs reproducible end-to-end.  The default base delay is 0 so test
    suites never sleep; production callers set a real base.
    """

    max_retries: int = 3
    base_delay_s: float = 0.0
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def delays(self) -> list[float]:
        """The full backoff series, one delay per permitted retry."""
        rng = random.Random(self.seed)
        return [
            self.base_delay_s * (self.multiplier**i) * (1.0 + self.jitter * rng.random())
            for i in range(self.max_retries)
        ]


@dataclass
class SessionResult:
    """What one :meth:`EvaluationSession.run` produced.

    ``database`` is the computed fixpoint for whole-database engines or
    the answer set for query engines; ``outcome`` is the underlying
    :class:`~repro.engine.fixpoint.EvaluationResult` carrying stats and
    the PARTIAL status/degradation, if any.  ``attempts`` counts the
    evaluations started (1 = no retry was needed).
    """

    database: object
    outcome: object
    attempts: int
    faults_seen: int

    @property
    def status(self):
        return self.outcome.status

    @property
    def degradation(self):
        return self.outcome.degradation


class EvaluationSession:
    """Run one evaluation under governance, fault wrapping, and retries.

    Args:
        program: the Datalog program.
        db: the input database (never mutated; each attempt copies it).
        engine: any registered engine name; query engines require
            *query*.
        query: goal atom for ``magic`` / ``supplementary`` / ``topdown``.
        governor: per-attempt resource limits (reset before each
            attempt); ``None`` = unlimited.
        retry_policy: how :class:`TransientStorageError` is retried.
        fault_plan: optional injection schedule -- when given, each
            attempt evaluates over ``fault_plan.wrap(db)``.
        on_limit: ``"partial"`` returns the PARTIAL outcome;
            ``"raise"`` re-raises the governor's
            :class:`ResourceLimitExceeded` instead.
        checkpoint_manager: when given (fixpoint engines only), every
            attempt writes durable round snapshots and starts from the
            latest valid checkpoint generation instead of the EDB.  The
            session fills in the manager's program/engine and wires its
            :meth:`~repro.resilience.checkpoint.CheckpointManager.on_round`
            into the governor (creating a limitless governor if none
            was given, so the hook has a carrier).
        workers: evaluate each attempt on a pool of this many worker
            processes (see :mod:`repro.engine.parallel`).  A crashed
            worker surfaces as :class:`~repro.errors.WorkerCrashError`,
            a retryable transient, so the retry loop restarts the
            attempt -- from the last barrier checkpoint when a manager
            is attached, since parallel runs checkpoint at the same
            round barriers serial ones do.
    """

    def __init__(
        self,
        program,
        db,
        engine: str = "seminaive",
        query=None,
        governor: ResourceGovernor | None = None,
        retry_policy: RetryPolicy = RetryPolicy(),
        fault_plan: FaultPlan | None = None,
        on_limit: str = "partial",
        checkpoint_manager: CheckpointManager | None = None,
        workers: int = 1,
    ):
        if on_limit not in ("partial", "raise"):
            raise ValueError(f"on_limit must be 'partial' or 'raise', got {on_limit!r}")
        self.program = program
        self.db = db
        self.engine = engine
        self.query = query
        self.governor = governor
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.on_limit = on_limit
        self.checkpoint_manager = checkpoint_manager
        self.workers = workers
        if checkpoint_manager is not None:
            from ..engine.fixpoint import get_engine

            if get_engine(engine).kind != "fixpoint":
                raise ValueError(
                    f"checkpointing requires a fixpoint engine, not {engine!r}"
                )
            if checkpoint_manager.program is None:
                checkpoint_manager.program = program
            if checkpoint_manager.engine is None:
                checkpoint_manager.engine = engine
            if self.governor is None:
                self.governor = ResourceGovernor()
            self.governor.on_round = checkpoint_manager.on_round

    # -- one attempt -----------------------------------------------------------
    def _resume_attempt(self):
        """Continue from the latest valid checkpoint, if one exists.

        Returns ``None`` (caller falls back to a fresh start) when there
        is no loadable generation, or the latest one belongs to another
        program or engine configuration (fingerprint mismatch) -- a
        stale file must never poison a new evaluation.
        """
        checkpoint = self.checkpoint_manager.latest()
        if checkpoint is None or checkpoint.engine != self.engine:
            return None
        source = (
            self.fault_plan.wrap(checkpoint.database)
            if self.fault_plan
            else checkpoint.database
        )
        if self.governor is not None:
            self.governor.reset()
            self.governor.note(engine=self.engine)
            state = checkpoint.governor_state or {}
            self.governor.restore(
                facts=state.get("facts", 0), rounds=state.get("rounds", 0)
            )
        metrics_registry().increment("checkpoint.resumed_attempts")
        try:
            result = resume_evaluation(
                checkpoint,
                governor=self.governor,
                database=source,
                program=self.program,
                workers=self.workers,
            )
        except CheckpointError:
            return None
        return result.database, result

    def _attempt(self):
        from ..engine.fixpoint import get_engine

        spec = get_engine(self.engine)
        if self.checkpoint_manager is not None and spec.kind == "fixpoint":
            resumed = self._resume_attempt()
            if resumed is not None:
                return resumed
        source = self.fault_plan.wrap(self.db) if self.fault_plan else self.db
        if self.governor is not None:
            self.governor.reset()
            self.governor.note(engine=self.engine)
        if spec.kind == "query":
            if self.query is None:
                raise ValueError(f"engine {self.engine!r} requires a query atom")
            extra = {}
            if self.workers > 1 and self.engine in ("magic", "supplementary"):
                # These rewrite-then-evaluate engines thread workers into
                # their inner bottom-up run; topdown has no fixpoint loop
                # to shard and runs in-process regardless.
                extra["workers"] = self.workers
            answers, result = spec.answer(
                self.program, source, self.query, governor=self.governor, **extra
            )
            return answers, result
        if spec.kind != "fixpoint":
            raise ValueError(
                f"engine {self.engine!r} is a {spec.kind} engine and cannot be "
                "driven by an EvaluationSession"
            )
        if self.workers > 1:
            from ..engine.parallel import parallel_evaluate

            result = parallel_evaluate(
                self.program,
                source,
                engine=self.engine,
                governor=self.governor,
                workers=self.workers,
            )
        else:
            result = spec.run(self.program, source, governor=self.governor)
        return result.database, result

    def run(self) -> SessionResult:
        """Evaluate, retrying transient faults; see the class docstring."""
        registry = metrics_registry()
        delays = self.retry_policy.delays()
        attempts = 0
        with trace("resilience.session", engine=self.engine) as span:
            while True:
                attempts += 1
                try:
                    with trace("resilience.attempt", index=attempts):
                        database, outcome = self._attempt()
                except TransientStorageError:
                    registry.increment("resilience.transient_faults")
                    if attempts > len(delays):
                        registry.increment("resilience.retries_exhausted")
                        raise
                    registry.increment("resilience.retries")
                    delay = delays[attempts - 1]
                    if delay > 0.0:
                        time.sleep(delay)
                    continue
                if span:
                    span.add("attempts", attempts)
                    span.set(status=outcome.status.value)
                if self.on_limit == "raise" and outcome.degradation is not None:
                    raise ResourceLimitExceeded(
                        outcome.degradation.summary(), report=outcome.degradation
                    )
                faults = self.fault_plan.injected if self.fault_plan else 0
                return SessionResult(
                    database=database,
                    outcome=outcome,
                    attempts=attempts,
                    faults_seen=faults,
                )
