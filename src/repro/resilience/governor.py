"""Resource governance for every evaluation entry point.

The paper's semi-decidable chase already imposes a robustness
discipline: a :class:`~repro.core.chase.ChaseBudget` plus a three-valued
:class:`~repro.core.chase.Verdict` turn a potentially non-terminating
procedure into one that always answers, if only with ``UNKNOWN``
(Section VIII).  This module promotes the same discipline to the
*decidable-but-expensive* side of the system -- the bottom-up and
top-down engines, whose fixpoints always terminate in theory but can
outlive any practical deadline on large or adversarial inputs.

The paper-grounded guarantee that makes graceful degradation sound:
positive Datalog is **monotone**, so every fact derived by an
interrupted fixpoint is in the minimal model ``M(P)``.  An interrupted
evaluation therefore returns a *sound under-approximation* -- exactly
the relationship ``[P, T]``'s budget-exhausted database bears to the
full chase result.  (For stratified programs the same holds stratum by
stratum: a rule with negation only fires once its negated predicates'
strata are complete, so every derived fact is in the perfect model.)

:class:`ResourceGovernor` carries the limits (wall-clock deadline,
max derived facts, max fixpoint rounds, approximate memory cap, and a
cooperative :class:`CancellationToken`) and is threaded through the
engines, which call :meth:`ResourceGovernor.tick` at rule/firing
granularity and :meth:`ResourceGovernor.checkpoint` at round
boundaries.  A tripped limit raises
:class:`~repro.errors.ResourceLimitExceeded` carrying a
:class:`DegradationReport`; the engine catches it and returns an
outcome with ``status=PARTIAL``.

Overhead discipline: every instrumentation site guards with
``if governor is not None`` (zero cost when ungoverned), and the
deadline clock is only consulted every ``check_stride`` ticks.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ResourceLimitExceeded
from ..obs.metrics import metrics_registry


class EvaluationStatus(enum.Enum):
    """Whether an evaluation ran to fixpoint or was degraded."""

    COMPLETE = "complete"
    PARTIAL = "partial"


@dataclass(frozen=True)
class DegradationReport:
    """Which limit tripped, and where the evaluation stood when it did.

    ``limit`` is one of ``"deadline"``, ``"max_facts"``, ``"max_rounds"``,
    ``"max_memory"``, ``"cancelled"``.  Location fields are best-effort:
    the engine keeps the governor's context up to date, so the report
    names the stratum / rule index / round in flight at the trip.
    """

    limit: str
    detail: str
    engine: Optional[str] = None
    stratum: Optional[int] = None
    rule_index: Optional[int] = None
    round: Optional[int] = None
    elapsed_s: float = 0.0
    facts_seen: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form, embedded in ``eval``/``query --json`` output."""
        return {
            "limit": self.limit,
            "detail": self.detail,
            "engine": self.engine,
            "stratum": self.stratum,
            "rule_index": self.rule_index,
            "round": self.round,
            "elapsed_s": self.elapsed_s,
            "facts_seen": self.facts_seen,
        }

    def summary(self) -> str:
        where = []
        if self.engine is not None:
            where.append(f"engine={self.engine}")
        if self.stratum is not None:
            where.append(f"stratum={self.stratum}")
        if self.round is not None:
            where.append(f"round={self.round}")
        if self.rule_index is not None:
            where.append(f"rule={self.rule_index}")
        location = f" at {' '.join(where)}" if where else ""
        return (
            f"PARTIAL: {self.limit} tripped{location} "
            f"({self.detail}; {self.elapsed_s * 1000:.1f}ms elapsed, "
            f"{self.facts_seen} facts)"
        )


class CancellationToken:
    """Cooperative cancellation: callers set it, the governor observes it.

    Thread-safe by construction (a single boolean flip); a controlling
    thread or signal handler may call :meth:`cancel` while an
    evaluation runs on the main thread.
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


def approximate_database_bytes(db: Any) -> int:
    """A cheap upper-ish estimate of a database's memory footprint.

    Walks relation *counts* only (never the tuples themselves).
    Backends that know their own layout report through
    ``db.approximate_bytes()`` -- the row backend costs each stored row
    as a tuple header plus per-slot pointers plus an amortized share of
    the interned Term objects, the columnar backend costs its int
    columns (see ``docs/STORAGE.md``), so a memory cap genuinely
    distinguishes the two.  Deliberately coarse -- the cap is a
    tripwire against runaway growth, not an accountant.
    """
    estimate = getattr(db, "approximate_bytes", None)
    if estimate is not None:
        return estimate()
    total = 0
    for pred in db.predicates:
        arity = db.arity(pred)
        rows = db.count(pred)
        # tuple header ~56B + 8B/slot pointer + ~48B/slot amortized term.
        total += rows * (56 + arity * 56)
    return total


class ResourceGovernor:
    """Enforces resource limits over one evaluation (or retry attempt).

    Args:
        deadline_s: wall-clock budget in seconds (``None`` = unlimited).
        max_facts: cap on facts *derived* during the run.
        max_rounds: cap on fixpoint rounds / passes.
        max_memory_bytes: approximate cap on the working database size
            (checked at round boundaries via
            :func:`approximate_database_bytes`).
        token: cooperative :class:`CancellationToken`.
        check_stride: how many :meth:`tick` calls between deadline
            checks; the default keeps the clock off the hot path.
        on_round: optional round-boundary hook with signature
            ``on_round(db, round, delta=None, governor=None)``, invoked
            by :meth:`checkpoint` *before* limits are enforced (so the
            trip round's state is still captured).  This is the seam
            durable checkpoints hang off
            (:meth:`repro.resilience.checkpoint.CheckpointManager.on_round`);
            configuration, not state -- :meth:`reset` leaves it alone.
    """

    __slots__ = (
        "deadline_s",
        "max_facts",
        "max_rounds",
        "max_memory_bytes",
        "token",
        "check_stride",
        "on_round",
        "_started_at",
        "_ticks",
        "_facts",
        "_rounds",
        "_engine",
        "_stratum",
        "_rule_index",
        "_round",
    )

    def __init__(
        self,
        deadline_s: float | None = None,
        max_facts: int | None = None,
        max_rounds: int | None = None,
        max_memory_bytes: int | None = None,
        token: CancellationToken | None = None,
        check_stride: int = 64,
        on_round: Any = None,
    ):
        self.deadline_s = deadline_s
        self.max_facts = max_facts
        self.max_rounds = max_rounds
        self.max_memory_bytes = max_memory_bytes
        self.token = token
        self.check_stride = max(1, check_stride)
        self.on_round = on_round
        self.reset()

    # -- lifecycle -------------------------------------------------------------
    def reset(self) -> None:
        """Restart all counters and the deadline clock (one per attempt)."""
        self._started_at: float | None = None
        self._ticks = 0
        self._facts = 0
        self._rounds = 0
        self._engine: str | None = None
        self._stratum: int | None = None
        self._rule_index: int | None = None
        self._round: int | None = None

    def restore(self, facts: int = 0, rounds: int = 0) -> None:
        """Pre-credit counters from a checkpointed run being resumed.

        ``max_facts`` / ``max_rounds`` then bound the *cumulative*
        evaluation (pre-crash work included), not just the resumed
        attempt.  The deadline clock is deliberately **not** restored:
        a wall-clock budget is per attempt, matching the
        :class:`~repro.resilience.session.EvaluationSession` contract.
        """
        self._facts = max(0, facts)
        self._rounds = max(0, rounds)

    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    # -- context (cheap; engines keep it current for the report) ---------------
    def note(
        self,
        engine: str | None = None,
        stratum: int | None = None,
        rule_index: int | None = None,
        round: int | None = None,
    ) -> None:
        """Record where the evaluation currently stands (for reports)."""
        if engine is not None:
            self._engine = engine
        if stratum is not None:
            self._stratum = stratum
        if rule_index is not None:
            self._rule_index = rule_index
        if round is not None:
            self._round = round

    # -- enforcement -----------------------------------------------------------
    def _trip(self, limit: str, detail: str) -> None:
        report = DegradationReport(
            limit=limit,
            detail=detail,
            engine=self._engine,
            stratum=self._stratum,
            rule_index=self._rule_index,
            round=self._round,
            elapsed_s=self.elapsed(),
            facts_seen=self._facts,
        )
        registry = metrics_registry()
        registry.increment("governor.trips")
        registry.increment(f"governor.trips.{limit}")
        raise ResourceLimitExceeded(report.summary(), report=report)

    def _check_deadline_and_token(self) -> None:
        if self.token is not None and self.token.cancelled:
            self._trip("cancelled", "cancellation token set")
        if self.deadline_s is not None:
            if self._started_at is None:
                self._started_at = time.monotonic()
            elif time.monotonic() - self._started_at > self.deadline_s:
                self._trip("deadline", f"wall-clock deadline of {self.deadline_s}s")

    def tick(self, facts: int = 0) -> None:
        """Hot-path check: count work, check the clock every stride ticks.

        *facts* is the number of facts derived since the last tick (the
        engines pass 0 or small deltas; :meth:`add_facts` is equivalent).
        """
        if facts:
            self._facts += facts
            if self.max_facts is not None and self._facts > self.max_facts:
                self._trip("max_facts", f"derived more than {self.max_facts} facts")
        self._ticks += 1
        if self._ticks % self.check_stride == 0 or self._started_at is None:
            self._check_deadline_and_token()

    def add_facts(self, count: int) -> None:
        """Credit derived facts without paying for a clock check."""
        if count:
            self._facts += count
            if self.max_facts is not None and self._facts > self.max_facts:
                self._trip("max_facts", f"derived more than {self.max_facts} facts")

    @property
    def facts_seen(self) -> int:
        """Facts credited so far (for checkpoint capture)."""
        return self._facts

    @property
    def rounds_seen(self) -> int:
        """Round-boundary checks passed so far (for checkpoint capture)."""
        return self._rounds

    def checkpoint(
        self,
        db: Any = None,
        round: int | None = None,
        delta: Any = None,
        extra_bytes: int = 0,
    ) -> None:
        """Round-boundary check: rounds, memory, deadline, cancellation.

        Engines call this once per fixpoint round / pass with the
        working database, so the (comparatively pricey) memory estimate
        runs at round granularity only.  *delta* is the semi-naive
        frontier in flight (``None`` on engines without one); it is not
        inspected here, only forwarded to the :attr:`on_round` hook so
        durable checkpoints can capture a resumable frontier.
        *extra_bytes* joins the memory estimate -- the parallel engine
        passes the aggregated worker-side database footprints so the
        memory cap governs the whole pool, not just the master replica.

        The hook runs **before** limits are enforced: when this very
        round boundary trips a limit, the state at the trip is already
        durable and ``resume`` can continue from it.
        """
        if round is not None:
            self._round = round
            self._rounds += 1
        if self.on_round is not None and db is not None:
            self.on_round(db, round, delta=delta, governor=self)
        if round is not None:
            if self.max_rounds is not None and self._rounds > self.max_rounds:
                self._trip("max_rounds", f"exceeded {self.max_rounds} fixpoint rounds")
        if self.max_memory_bytes is not None and db is not None:
            estimate = approximate_database_bytes(db) + extra_bytes
            if estimate > self.max_memory_bytes:
                self._trip(
                    "max_memory",
                    f"~{estimate} bytes exceeds cap of {self.max_memory_bytes}",
                )
        self._check_deadline_and_token()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        limits = []
        if self.deadline_s is not None:
            limits.append(f"deadline={self.deadline_s}s")
        if self.max_facts is not None:
            limits.append(f"max_facts={self.max_facts}")
        if self.max_rounds is not None:
            limits.append(f"max_rounds={self.max_rounds}")
        if self.max_memory_bytes is not None:
            limits.append(f"max_memory={self.max_memory_bytes}")
        return f"<ResourceGovernor {' '.join(limits) or 'unlimited'}>"
