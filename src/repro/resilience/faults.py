"""Deterministic fault injection at the database storage seams.

Every engine reads and writes through a handful of
:class:`~repro.data.database.Database` operations -- ``candidates``
(index probes / scans feeding the joins), ``_add_row`` (all fact
insertion), and ``__contains__`` (delta-novelty checks).  Those are
exactly the operations that would touch a remote backend in a scaled
deployment, so they are the seams where this harness injects
:class:`~repro.errors.TransientStorageError` or artificial latency.

Determinism is the design center: a :class:`FaultPlan` schedules faults
at exact *operation counts* (optionally derived from a seed), never
from wall-clock time or global randomness, so every chaos run is
reproducible bit-for-bit and every failure a CI job finds can be
replayed locally from its seed.

Use :meth:`FaultPlan.wrap` to get a :class:`FaultyDatabase` view of an
input database; engines ``copy()`` their input, and the wrapper's copy
stays faulty (sharing the same plan and counters), so faults keep
firing throughout the evaluation.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..data.columnar import ColumnarDatabase
from ..data.database import Database
from ..errors import SimulatedCrash, TransientStorageError
from ..obs.metrics import metrics_registry

#: Operations the harness can intercept.  The first three are the
#: documented Database storage seams; ``crash`` is the process-abort
#: seam advanced by the checkpoint writer's write stages (see
#: :meth:`repro.resilience.checkpoint.CheckpointManager.write`) -- a
#: fault scheduled there raises :class:`~repro.errors.SimulatedCrash`,
#: which nothing retries, simulating SIGKILL mid-write.
FAULT_OPERATIONS = ("candidates", "add", "contains", "crash")


@dataclass(frozen=True)
class InjectedFault:
    """One scheduled fault.

    Fires when *operation*'s call counter reaches *at* (1-based).  A
    ``transient`` fault raises :class:`TransientStorageError` once and
    is consumed; a ``persistent=True`` fault fires on *every* call from
    *at* onward (modelling a hard outage that retries cannot outlast).
    ``latency_s > 0`` sleeps instead of raising (a slow backend), which
    composes with the governor's deadline.
    """

    operation: str
    at: int
    persistent: bool = False
    latency_s: float = 0.0

    def __post_init__(self):
        if self.operation not in FAULT_OPERATIONS:
            raise ValueError(
                f"unknown fault operation {self.operation!r}; "
                f"expected one of {FAULT_OPERATIONS}"
            )
        if self.at < 1:
            raise ValueError("fault position 'at' is 1-based and must be >= 1")


class FaultPlan:
    """A deterministic schedule of injected faults with live counters.

    The plan owns one call counter per operation; every
    :class:`FaultyDatabase` bound to the plan shares them, so a
    transient fault consumed during attempt 1 does not re-fire during
    the retry -- which is precisely what makes it *transient* from the
    :class:`~repro.resilience.session.EvaluationSession`'s viewpoint.
    """

    def __init__(self, faults: Iterable[InjectedFault] = ()):
        self._onetime: dict[str, dict[int, InjectedFault]] = {}
        self._persistent: dict[str, list[InjectedFault]] = {}
        self.counters: dict[str, int] = {op: 0 for op in FAULT_OPERATIONS}
        self.injected = 0
        for fault in faults:
            if fault.persistent:
                self._persistent.setdefault(fault.operation, []).append(fault)
            else:
                self._onetime.setdefault(fault.operation, {})[fault.at] = fault

    @classmethod
    def transient_at(
        cls, operation: str, positions: Iterable[int], latency_s: float = 0.0
    ) -> "FaultPlan":
        """Explicit schedule: one-shot faults at the given call counts."""
        return cls(
            InjectedFault(operation, at, latency_s=latency_s) for at in positions
        )

    @classmethod
    def crash_at(cls, positions: Iterable[int]) -> "FaultPlan":
        """Schedule :class:`~repro.errors.SimulatedCrash` at the given
        crash-seam stages.  Each checkpoint write advances the ``crash``
        counter by one per write stage (see
        :meth:`~repro.resilience.checkpoint.CheckpointManager.write`),
        so positions address an exact write and stage within it."""
        return cls(InjectedFault("crash", at) for at in positions)

    @classmethod
    def seeded(
        cls,
        seed: int,
        operations: Iterable[str] = ("candidates", "add"),
        faults_per_operation: int = 3,
        horizon: int = 2_000,
        latency_s: float = 0.0,
    ) -> "FaultPlan":
        """Derive a reproducible schedule from *seed*.

        For each operation, ``faults_per_operation`` distinct one-shot
        positions are drawn uniformly from ``[1, horizon]`` by a
        dedicated :class:`random.Random` -- same seed, same schedule,
        on every platform.
        """
        rng = random.Random(seed)
        plan_faults = []
        for operation in operations:
            count = min(faults_per_operation, horizon)
            for at in sorted(rng.sample(range(1, horizon + 1), count)):
                plan_faults.append(
                    InjectedFault(operation, at, latency_s=latency_s)
                )
        return cls(plan_faults)

    def wrap(self, db: Database) -> "Database":
        """A faulty view of *db* (copies the facts; shares this plan).

        Dispatches on the database's storage backend, so columnar
        inputs stay columnar under fault injection (the seams fire at
        the same operation counts on either backend).
        """
        if db.backend == "columnar":
            return FaultyColumnarDatabase.wrap(db, self)
        return FaultyDatabase.wrap(db, self)

    def before(self, operation: str) -> None:
        """Advance *operation*'s counter; fire any scheduled fault."""
        count = self.counters[operation] + 1
        self.counters[operation] = count
        fault = None
        for persistent in self._persistent.get(operation, ()):
            if count >= persistent.at:
                fault = persistent
                break
        if fault is None:
            fault = self._onetime.get(operation, {}).pop(count, None)
        if fault is None:
            return
        self.injected += 1
        metrics_registry().increment("resilience.faults_injected")
        if fault.latency_s > 0.0:
            time.sleep(fault.latency_s)
            return
        if operation == "crash":
            raise SimulatedCrash(
                f"injected crash at {operation} seam stage #{count}"
            )
        raise TransientStorageError(
            f"injected fault: {operation} call #{count} failed"
            + (" (persistent)" if fault.persistent else "")
        )

    @property
    def pending(self) -> int:
        """One-shot faults not yet consumed (persistent ones excluded)."""
        return sum(len(schedule) for schedule in self._onetime.values())


class FaultyDatabase(Database):
    """A :class:`Database` whose storage seams consult a :class:`FaultPlan`.

    ``copy()`` returns another faulty view bound to the same plan, so a
    wrapped input stays wrapped through the engines' defensive copies.
    """

    __slots__ = ("_plan",)

    def __init__(self, plan: FaultPlan, atoms=()):  # noqa: D107
        self._plan = plan
        Database.__init__(self, atoms)

    @classmethod
    def wrap(cls, db: Database, plan: FaultPlan) -> "FaultyDatabase":
        new = cls(plan)
        for pred, rows in db._relations.items():
            new._arities[pred] = db._arities[pred]
            new._relations[pred] = set(rows)
            new._size += len(rows)
        return new

    def copy(self) -> "FaultyDatabase":
        new = FaultyDatabase(self._plan)
        for pred, rows in self._relations.items():
            new._arities[pred] = self._arities[pred]
            new._relations[pred] = set(rows)
            new._size += len(rows)
        return new

    def empty_like(self) -> "FaultyDatabase":
        """Snapshots allocated during evaluation stay fault-wrapped."""
        return FaultyDatabase(self._plan)

    # -- intercepted seams -----------------------------------------------------
    def _add_row(self, predicate: str, row: tuple) -> bool:
        self._plan.before("add")
        return Database._add_row(self, predicate, row)

    def candidates(self, predicate: str, bound: Mapping[int, object]):
        self._plan.before("candidates")
        return Database.candidates(self, predicate, bound)

    def __contains__(self, atom) -> bool:
        self._plan.before("contains")
        return Database.__contains__(self, atom)


class FaultyColumnarDatabase(ColumnarDatabase):
    """The columnar twin of :class:`FaultyDatabase`.

    Same three intercepted seams, same plan-sharing ``copy()`` /
    ``empty_like()`` discipline; the underlying storage is the
    interned-int columnar layout.
    """

    __slots__ = ("_plan",)

    def __init__(self, plan: FaultPlan, atoms=()):  # noqa: D107
        self._plan = plan
        ColumnarDatabase.__init__(self, atoms)

    @classmethod
    def wrap(cls, db: ColumnarDatabase, plan: FaultPlan) -> "FaultyColumnarDatabase":
        new = cls(plan)
        new._table = db._table
        for pred, rel in db._relations.items():
            new._arities[pred] = db._arities[pred]
            new._relations[pred] = rel.copy()
            new._size += len(rel)
        return new

    def copy(self) -> "FaultyColumnarDatabase":
        new = FaultyColumnarDatabase(self._plan)
        new._table = self._table
        for pred, rel in self._relations.items():
            new._arities[pred] = self._arities[pred]
            new._relations[pred] = rel.copy()
            new._size += len(rel)
        return new

    def empty_like(self) -> "FaultyColumnarDatabase":
        """Snapshots allocated during evaluation stay fault-wrapped."""
        new = FaultyColumnarDatabase(self._plan)
        new._table = self._table
        return new

    # -- intercepted seams -----------------------------------------------------
    def _add_row(self, predicate: str, row: tuple) -> bool:
        self._plan.before("add")
        return ColumnarDatabase._add_row(self, predicate, row)

    def candidates(self, predicate: str, bound: Mapping[int, object]):
        self._plan.before("candidates")
        return ColumnarDatabase.candidates(self, predicate, bound)

    def __contains__(self, atom) -> bool:
        self._plan.before("contains")
        return ColumnarDatabase.__contains__(self, atom)
