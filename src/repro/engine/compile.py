"""Compiled join kernels: rule bodies flattened to slot-array programs.

:func:`~repro.engine.joins.match_body` is the *reference* join
implementation: general, readable, and slow -- every probe re-derives
the bound argument positions of the current literal by walking its terms
with ``isinstance`` checks and a fresh ``dict`` of variable bindings
(:func:`~repro.engine.joins._bound_positions`), and every matched row is
re-verified position by position even though the index bucket already
guaranteed most positions.

This module compiles each (rule, delta-position) variant **once** into a
flat :class:`JoinKernel` that operates on raw tuples and an integer slot
array:

* variables become *slots* (dense integers assigned in join order);
* each body literal becomes a :class:`_Step` carrying precomputed
  ``(position -> slot)`` templates -- positions already bound feed the
  index probe (and need no per-row re-check, because
  :meth:`~repro.data.database.Database.candidates` guarantees them),
  first occurrences write their slot, and intra-atom repeats are the
  only per-row equality checks left;
* the head (and each negated subgoal) is emitted by a slot-projection
  template, so no substitution dictionaries are built on the hot path;
* the *witness cutoff* of ``match_body`` (stop enumerating once every
  head variable is bound) becomes a compile-time ``witness_depth``
  instead of a per-node ``all(v in bindings)`` scan.

**Textbook semi-naive splitting.**  A kernel compiled with a
``delta_position`` tags every body position with a source:

* the delta position reads Δ (the facts new in the previous round);
* positions *before* it (in body order) read the **pre-round snapshot**
  ``F_{k-1}``;
* positions *after* it read the full database ``F_k = F_{k-1} ∪ Δ``.

A body instantiation whose rows touch Δ at positions ``D ≠ ∅`` is then
derived exactly once -- by the variant pinned at ``min(D)`` -- instead of
``|D|`` times as under the naive "non-delta positions read everything"
discipline.  The duplicates that discipline would have produced are
counted per emission (each later position whose matched row is in Δ)
and surface as the ``delta.duplicate_derivations_avoided`` metric.

**Redundant-delta prune.**  When the Δ-pinned atom carries a variable
exclusive to it (it appears nowhere else in the rule -- the planted
redundant atoms ``G(x, s)`` of the benchmark workloads are the extreme
case), a Δ row with a *snapshot* witness agreeing on all shared
positions derives nothing new: swapping the witness in yields the same
head with strictly older facts at this position, so the head either was
derived in an earlier round (all-snapshot body) or is found by the
variant pinned at the next Δ position.  Such rows are skipped before
any sub-enumeration, which is what makes the semi-naive engine beat
naive on rules with redundant existential atoms instead of losing 5× to
it.

**Fault seams and governance.**  Kernels reach storage only through the
three documented seams -- every probe goes through ``candidates``, every
negated check through ``__contains__`` -- and tick the resource governor
per emitted head, so fault injection and graceful degradation behave
exactly as they do on the reference path.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..data.database import Database
from ..errors import UnsafeRuleError
from ..lang.atoms import Atom, Literal
from ..lang.terms import Term, Variable
from ..obs.metrics import metrics_registry
from .joins import plan_order
from .stats import EvaluationStats

#: Source tags for body positions (resolved to databases per run).
SRC_DB = 0  #: the evaluation database (no delta splitting / negation)
SRC_DELTA = 1  #: Δ -- the delta-pinned position
SRC_BEFORE = 2  #: the pre-round snapshot ``F_{k-1}`` (positions before Δ)
SRC_AFTER = 3  #: ``F_{k-1} ∪ Δ`` == the full database (positions after Δ)

_NO_BOUND: dict = {}


class _Step:
    """One compiled body literal (in join order)."""

    __slots__ = (
        "predicate",
        "positive",
        "source",
        "const_bound",
        "slot_bound",
        "binds",
        "self_checks",
        "neg_base",
        "neg_slots",
        "body_position",
        "prune",
    )

    def __init__(
        self,
        predicate: str,
        positive: bool,
        source: int,
        const_bound: dict[int, object],
        slot_bound: tuple[tuple[int, int], ...],
        binds: tuple[tuple[int, int], ...],
        self_checks: tuple[tuple[int, int], ...],
        neg_base: tuple | None,
        neg_slots: tuple[tuple[int, int], ...],
        body_position: int,
        prune: tuple[int, ...] | None = None,
    ):
        self.predicate = predicate
        self.positive = positive
        self.source = source
        self.const_bound = const_bound
        self.slot_bound = slot_bound
        self.binds = binds
        self.self_checks = self_checks
        #: Negated literal only: the ground-argument row with ``None``
        #: at variable positions (*neg_base*), plus the ``(position,
        #: slot)`` projections filling them (*neg_slots*).  Keeping
        #: constants in a prefilled base row -- instead of a mixed
        #: slot-or-Term template -- removes any ambiguity between slot
        #: numbers and storage-encoded int constants (columnar backend).
        self.neg_base = neg_base
        self.neg_slots = neg_slots
        self.body_position = body_position
        #: For the Δ-pinned step only: the positions a snapshot witness
        #: must agree on (shared variables + constants).  Set when the
        #: atom has at least one variable exclusive to it, enabling the
        #: redundant-delta prune (see :meth:`JoinKernel.run`).
        self.prune = prune


class JoinKernel:
    """A rule body compiled to a flat slot program.

    Build with :func:`compile_kernel`; execute with :meth:`run`.  A
    kernel is immutable and reusable across fixpoint rounds -- the
    engines cache one per (rule, delta-position) pair in a
    :class:`KernelCache`.
    """

    __slots__ = (
        "head_predicate",
        "head_base",
        "head_slots",
        "steps",
        "n_slots",
        "witness_depth",
        "delta_position",
        "order",
        "suffix_reads",
        "_after_prefix",
    )

    def __init__(
        self,
        head_predicate: str,
        head_base: tuple,
        head_slots: tuple[tuple[int, int], ...],
        steps: tuple[_Step, ...],
        n_slots: int,
        witness_depth: int,
        delta_position: int | None,
        order: tuple[int, ...],
    ):
        self.head_predicate = head_predicate
        #: Head row with constants prefilled (``None`` at variable
        #: positions) plus the ``(position, slot)`` projections; same
        #: base/slots split as the negated-step templates.
        self.head_base = head_base
        self.head_slots = head_slots
        self.steps = steps
        self.n_slots = n_slots
        self.witness_depth = witness_depth
        self.delta_position = delta_position
        self.order = order
        #: Enumerated (pre-cutoff) steps reading snapshot ∪ Δ -- the rows
        #: matched there decide the duplicate-derivations-avoided count.
        self._after_prefix = tuple(
            d
            for d in range(witness_depth)
            if steps[d].positive and steps[d].source == SRC_AFTER
        )
        #: The slots the post-cutoff suffix *reads* (probe bindings,
        #: intra-atom self-checks, negated projections).  Two cutoff
        #: states agreeing on these slots have identical suffix
        #: satisfiability, so :meth:`run` memoizes ``exists`` per
        #: distinct read-slot valuation -- the existential-suffix memo
        #: that collapses the witness search on wide redundant bodies.
        reads: set[int] = set()
        for step in steps[witness_depth:]:
            for _pos, slot in step.slot_bound:
                reads.add(slot)
            for _pos, slot in step.self_checks:
                reads.add(slot)
            for _pos, slot in step.neg_slots:
                reads.add(slot)
        self.suffix_reads = tuple(sorted(reads))

    def run(
        self,
        db: Database,
        delta: Database | None = None,
        before: Database | None = None,
        stats: EvaluationStats | None = None,
        governor=None,
        count_avoided: bool = False,
    ) -> set[Atom]:
        """All head atoms derivable through this kernel.

        Args:
            db: the full database (``SRC_DB`` / ``SRC_AFTER`` positions
                and every negated check).
            delta: Δ; required when the kernel was compiled with a
                delta position.
            before: the pre-round snapshot for ``SRC_BEFORE`` positions;
                ``None`` makes them read *db* (the non-textbook
                discipline used by incremental maintenance, where the
                materialized database is the only consistent source).
            stats: join-work counters (``rule_firings``,
                ``subgoal_attempts``, ``duplicates_avoided``).
            governor: optional resource governor, ticked per emission.
            count_avoided: account duplicate derivations avoided by the
                snapshot discipline (needs *delta*; a lower bound -- only
                enumerated positions are inspected).
        """
        steps = self.steps
        if self.delta_position is not None and delta is None:
            raise ValueError("kernel compiled with a delta position needs delta=")
        sources: list[Database] = []
        for step in steps:
            if step.source == SRC_DELTA:
                sources.append(delta)  # type: ignore[arg-type]
            elif step.source == SRC_BEFORE:
                sources.append(before if before is not None else db)
            else:
                sources.append(db)

        slots: list = [None] * self.n_slots
        rows_at: list[tuple | None] = [None] * len(steps)
        derived: set[Atom] = set()
        head_base = self.head_base
        head_slots = self.head_slots
        wd = self.witness_depth
        n = len(steps)
        counting = count_avoided and delta is not None and self._after_prefix
        avoided = 0
        # Existential-suffix memo: suffix satisfiability keyed by the
        # slots the suffix reads.  Sound because the sources are fixed
        # for the whole run (engines update databases between runs).
        suffix_reads = self.suffix_reads
        suffix_memo: dict[tuple, bool] = {}

        def emit() -> None:
            nonlocal avoided
            if stats is not None:
                stats.rule_firings += 1
            if governor is not None:
                governor.tick()
            if head_slots:
                parts = list(head_base)
                for pos, slot in head_slots:
                    parts[pos] = slots[slot]
                derived.add(Atom(self.head_predicate, tuple(parts)))
            else:
                derived.add(Atom(self.head_predicate, head_base))
            if counting:
                for d in self._after_prefix:
                    row = rows_at[d]
                    if row is not None and delta.contains_tuple(
                        steps[d].predicate, row
                    ):
                        avoided += 1

        def exists(depth: int) -> bool:
            """Satisfiability of the suffix: stop at the first witness."""
            nonlocal avoided
            if depth == n:
                return True
            step = steps[depth]
            if stats is not None:
                stats.subgoal_attempts += 1
            if not step.positive:
                parts = list(step.neg_base)
                for pos, slot in step.neg_slots:
                    parts[pos] = slots[slot]
                return Atom(step.predicate, tuple(parts)) not in db and exists(
                    depth + 1
                )
            if step.slot_bound:
                bound = dict(step.const_bound)
                for pos, slot in step.slot_bound:
                    bound[pos] = slots[slot]
            elif step.const_bound:
                bound = step.const_bound
            else:
                bound = _NO_BOUND
            source = sources[depth]
            binds = step.binds
            self_checks = step.self_checks
            prune = step.prune if before is not None else None
            for row in source.candidates(step.predicate, bound):
                if prune is not None and _has_witness(
                    before, step.predicate, row, prune
                ):
                    avoided += 1
                    continue
                for pos, slot in binds:
                    slots[slot] = row[pos]
                if self_checks:
                    ok = True
                    for pos, slot in self_checks:
                        if row[pos] != slots[slot]:
                            ok = False
                            break
                    if not ok:
                        continue
                if exists(depth + 1):
                    return True
            return False

        def search(depth: int) -> None:
            nonlocal avoided
            if depth == wd:
                if wd == n:
                    emit()
                    return
                key = tuple(slots[s] for s in suffix_reads)
                hit = suffix_memo.get(key)
                if hit is None:
                    suffix_memo[key] = hit = exists(depth)
                if hit:
                    emit()
                return
            step = steps[depth]
            if stats is not None:
                stats.subgoal_attempts += 1
            if not step.positive:
                parts = list(step.neg_base)
                for pos, slot in step.neg_slots:
                    parts[pos] = slots[slot]
                if Atom(step.predicate, tuple(parts)) not in db:
                    search(depth + 1)
                return
            if step.slot_bound:
                bound = dict(step.const_bound)
                for pos, slot in step.slot_bound:
                    bound[pos] = slots[slot]
            elif step.const_bound:
                bound = step.const_bound
            else:
                bound = _NO_BOUND
            source = sources[depth]
            binds = step.binds
            self_checks = step.self_checks
            prune = step.prune if before is not None else None
            for row in source.candidates(step.predicate, bound):
                if prune is not None and _has_witness(
                    before, step.predicate, row, prune
                ):
                    avoided += 1
                    continue
                for pos, slot in binds:
                    slots[slot] = row[pos]
                if self_checks:
                    ok = True
                    for pos, slot in self_checks:
                        if row[pos] != slots[slot]:
                            ok = False
                            break
                    if not ok:
                        continue
                rows_at[depth] = row
                search(depth + 1)

        search(0)
        if avoided and stats is not None:
            stats.duplicates_avoided += avoided
        return derived


def _has_witness(
    snapshot: Database, predicate: str, row: tuple, positions: tuple[int, ...]
) -> bool:
    """Does *snapshot* hold a row agreeing with *row* on *positions*?"""
    bound = {pos: row[pos] for pos in positions} if positions else _NO_BOUND
    for _ in snapshot.candidates(predicate, bound):
        return True
    return False


def _prune_template(
    head: Atom, body: Sequence[Literal], delta_position: int
) -> tuple[int, ...] | None:
    """The shared positions of the Δ-pinned atom, or ``None``.

    Returns the positions a snapshot witness must agree on (constants
    plus variables occurring more than once in the rule) when the atom
    has at least one *exclusive* variable -- one appearing exactly once
    in the whole rule.  Without an exclusive variable a snapshot witness
    would have to equal the Δ row itself (impossible: Δ is disjoint
    from the snapshot), so the prune is compiled out.
    """
    occurrences: dict[Variable, int] = {}
    for term in head.args:
        if isinstance(term, Variable):
            occurrences[term] = occurrences.get(term, 0) + 1
    for literal in body:
        for term in literal.atom.args:
            if isinstance(term, Variable):
                occurrences[term] = occurrences.get(term, 0) + 1
    shared: list[int] = []
    exclusive = 0
    for pos, term in enumerate(body[delta_position].atom.args):
        if isinstance(term, Variable) and occurrences[term] == 1:
            exclusive += 1
        else:
            shared.append(pos)
    return tuple(shared) if exclusive else None


def compile_kernel(
    head: Atom,
    body: Sequence[Literal],
    db: Database,
    delta_position: int | None = None,
    order: Sequence[int] | None = None,
    hints: Mapping[str, int] | None = None,
) -> JoinKernel:
    """Compile one rule variant into a :class:`JoinKernel`.

    The join order is chosen once by :func:`~repro.engine.joins.plan_order`
    (delta-pinned when *delta_position* is given) against the relation
    sizes of *db* at compile time; re-planning per round never changes
    correctness, only tie-breaks, so the compiled order is kept for the
    kernel's lifetime.  *hints* are static size estimates consulted for
    predicates *db* holds no facts of (see ``plan_order``) -- kernels
    are compiled against the *initial* database, where every IDB
    relation is empty and the size tie-break is otherwise blind.
    """
    if delta_position is not None:
        if not (0 <= delta_position < len(body)):
            raise ValueError(f"delta position {delta_position} out of range")
        if not body[delta_position].positive:
            raise ValueError("the delta-pinned body literal must be positive")
    head_vars = frozenset(head.variables())
    # Ground terms are compiled into *db*'s storage representation
    # (identity on the row backend, interned ints on columnar), so the
    # hot loop's equality checks and index probes never touch Terms.
    store = db.store_term
    if order is None:
        order = plan_order(
            body, db, prefer_vars=head_vars, first=delta_position, hints=hints
        )
    order = tuple(order)

    slot_of: dict[Variable, int] = {}
    steps: list[_Step] = []
    bound_vars: set[Variable] = set()
    witness_depth = len(order)
    witness_found = head_vars <= bound_vars
    if witness_found:
        witness_depth = 0

    for depth, body_index in enumerate(order):
        literal = body[body_index]
        atom = literal.atom
        if not witness_found and head_vars <= bound_vars:
            witness_depth = depth
            witness_found = True
        if literal.positive:
            if delta_position is None:
                source = SRC_DB
            elif body_index == delta_position:
                source = SRC_DELTA
            elif body_index < delta_position:
                source = SRC_BEFORE
            else:
                source = SRC_AFTER
            prune = (
                _prune_template(head, body, delta_position)
                if source == SRC_DELTA
                else None
            )
            const_bound: dict[int, object] = {}
            slot_bound: list[tuple[int, int]] = []
            binds: list[tuple[int, int]] = []
            self_checks: list[tuple[int, int]] = []
            fresh_here: set[Variable] = set()
            for pos, term in enumerate(atom.args):
                if not isinstance(term, Variable):
                    const_bound[pos] = store(term)
                elif term in fresh_here:
                    # Repeated within this atom, first bound here: the
                    # index cannot enforce it, check per row.
                    self_checks.append((pos, slot_of[term]))
                elif term in slot_of:
                    slot_bound.append((pos, slot_of[term]))
                else:
                    slot = slot_of[term] = len(slot_of)
                    binds.append((pos, slot))
                    fresh_here.add(term)
            steps.append(
                _Step(
                    atom.predicate,
                    True,
                    source,
                    const_bound,
                    tuple(slot_bound),
                    tuple(binds),
                    tuple(self_checks),
                    None,
                    (),
                    body_index,
                    prune,
                )
            )
            bound_vars.update(fresh_here)
        else:
            # plan_order schedules a negated literal only once fully
            # bound, so every variable already has a slot.
            neg_base = tuple(
                None if isinstance(t, Variable) else store(t) for t in atom.args
            )
            neg_slots = tuple(
                (pos, slot_of[t])
                for pos, t in enumerate(atom.args)
                if isinstance(t, Variable)
            )
            steps.append(
                _Step(
                    atom.predicate,
                    False,
                    SRC_DB,
                    _NO_BOUND,
                    (),
                    (),
                    (),
                    neg_base,
                    neg_slots,
                    body_index,
                )
            )
    if not witness_found and head_vars <= bound_vars:
        witness_depth = len(order)
        witness_found = True
    if not witness_found:
        missing = sorted(v.name for v in head_vars - bound_vars)
        raise UnsafeRuleError(
            f"head variables {missing} never bound by the body (unsafe rule)"
        )

    head_base = tuple(
        None if isinstance(t, Variable) else store(t) for t in head.args
    )
    head_slots = tuple(
        (pos, slot_of[t])
        for pos, t in enumerate(head.args)
        if isinstance(t, Variable)
    )
    metrics_registry().increment("compile.kernels_built")
    return JoinKernel(
        head.predicate,
        head_base,
        head_slots,
        tuple(steps),
        len(slot_of),
        witness_depth,
        delta_position,
        order,
    )


#: Planner hints installed from a plan certificate, keyed by the
#: program's canonical isomorphism class (``canonical_program_key``).
#: Consulted *before* the interval analysis, so ``query --certificate``
#: skips re-analysis entirely.
_certificate_hints: dict[str, Mapping[str, int]] = {}


def install_certificate_hints(program_key: str, hints: Mapping[str, int]) -> None:
    """Register precomputed per-predicate size estimates for a program.

    Subsequent :func:`cardinality_hint_provider` calls for a program
    with this canonical key return *hints* without running the
    cardinality analysis (``compile.certificate_hints`` counts the
    hits).
    """
    _certificate_hints[program_key] = dict(hints)


def clear_certificate_hints() -> None:
    _certificate_hints.clear()


def cardinality_hint_provider(program, db: Database):
    """A :class:`KernelCache` *hint_provider* backed by interval analysis.

    Deferred import: the absint package reaches the engines through the
    groundness/magic coupling, so importing it at module load would
    cycle.  The provider is only ever called when a kernel actually
    needs an estimate (see :meth:`KernelCache._hints_for`).  Hints
    installed from a plan certificate (:func:`install_certificate_hints`)
    short-circuit the analysis.
    """

    def provider() -> Mapping[str, int]:
        if _certificate_hints:
            from ..lang.canonical import canonical_program_key

            installed = _certificate_hints.get(canonical_program_key(program))
            if installed is not None:
                metrics_registry().increment("compile.certificate_hints")
                return installed
        from ..analysis.absint.cardinality import cardinality_hints

        return cardinality_hints(program, db)

    return provider


class KernelCache:
    """Per-evaluation cache of compiled kernels.

    Keyed by ``(rule_index, delta_position)``; compilation is amortized
    across every fixpoint round exactly like the old per-variant plan
    cache, but the cached object is the whole kernel, not just the
    order.

    *hint_provider* supplies static per-predicate size estimates (a
    ``() -> dict[str, int]``, typically closing over
    :func:`repro.analysis.absint.cardinality.cardinality_hints`).  It is
    called **lazily**, the first time a kernel's body references a
    predicate the database holds no facts of -- programs whose bodies
    are covered by real statistics never pay for the analysis.
    """

    __slots__ = ("_rules", "_db", "_kernels", "_hint_provider", "_hints")

    def __init__(self, rules: Sequence, db: Database, hint_provider=None):
        self._rules = rules
        self._db = db
        self._kernels: dict[tuple[int, int | None], JoinKernel] = {}
        self._hint_provider = hint_provider
        self._hints: Mapping[str, int] | None = None

    def _hints_for(self, rule) -> Mapping[str, int] | None:
        if self._hint_provider is None:
            return None
        if not any(
            literal.positive and self._db.count(literal.predicate) == 0
            for literal in rule.body
        ):
            return None  # real statistics cover every joined relation
        if self._hints is None:
            self._hints = self._hint_provider() or {}
        return self._hints

    def kernel(self, rule_index: int, delta_position: int | None = None) -> JoinKernel:
        key = (rule_index, delta_position)
        kernel = self._kernels.get(key)
        if kernel is None:
            rule = self._rules[rule_index]
            hints = self._hints_for(rule)
            if hints:
                metrics_registry().increment("compile.hinted_plans")
            kernel = compile_kernel(
                rule.head,
                rule.body,
                self._db,
                delta_position=delta_position,
                hints=hints,
            )
            self._kernels[key] = kernel
        return kernel

    def __len__(self) -> int:
        return len(self._kernels)
