"""Magic-sets rewriting (Bancilhon, Maier, Sagiv, Ullman 1986).

Section I of the paper motivates minimization as *complementary* to
goal-directed evaluation: "if the query is going to be computed [by] the
'magic set' method ... then removing redundant parts can only speed up
the computation."  This module implements the classic magic-sets
transformation with left-to-right sideways information passing, so the
Q6 benchmark can measure exactly that composition: minimize first, then
magic-rewrite, then evaluate.

Overview of the rewriting for a query ``Q(c̄, x̄)``:

1. The query's *adornment* marks each argument bound (``b``, a constant)
   or free (``f``).
2. Every reachable IDB predicate is specialized per adornment
   (``G__bf``), propagating boundness left to right through rule bodies.
3. Each adorned rule is guarded by a *magic atom* ``m__G__bf(...)``
   carrying the bound head arguments, and *magic rules* push bindings
   from a rule's head and earlier subgoals into each IDB subgoal.
4. A *seed fact* asserts the query's constants, and evaluation explores
   only facts relevant to the query.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from ..data.database import Database
from ..errors import UnsafeRuleError
from ..lang.atoms import Atom, Literal
from ..lang.canonical import canonical_program_key
from ..lang.programs import Program
from ..lang.rules import Rule
from ..lang.terms import Term, Variable
from ..obs.tracer import trace
from ..resilience.governor import ResourceGovernor
from .fixpoint import EngineName, EvaluationResult, evaluate

#: Separator for generated predicate names; documented reserved prefix.
_ADORN_SEP = "__"
_MAGIC_PREFIX = "m__"


@dataclass(frozen=True)
class Adornment:
    """A boundness pattern over the argument positions of a predicate."""

    pattern: tuple[bool, ...]

    @property
    def suffix(self) -> str:
        return "".join("b" if b else "f" for b in self.pattern)

    @property
    def bound_positions(self) -> tuple[int, ...]:
        return tuple(i for i, b in enumerate(self.pattern) if b)

    def __str__(self) -> str:
        return self.suffix

    @classmethod
    def for_atom(cls, atom: Atom, bound_vars: frozenset[Variable]) -> "Adornment":
        """Adorn an atom: constants and already-bound variables are ``b``."""
        return cls(
            tuple(
                (not isinstance(t, Variable)) or t in bound_vars
                for t in atom.args
            )
        )

    @classmethod
    def all_free(cls, arity: int) -> "Adornment":
        return cls((False,) * arity)


def adorned_name(predicate: str, adornment: Adornment) -> str:
    return f"{predicate}{_ADORN_SEP}{adornment.suffix}"


def magic_name(predicate: str, adornment: Adornment) -> str:
    return _MAGIC_PREFIX + adorned_name(predicate, adornment)


# ---------------------------------------------------------------------------
# Adornment-closure cache
#
# The demanded-adornment fixpoint depends only on the program's
# isomorphism class (canonical_program_key), the query predicate, the
# query's boundness pattern, and the SIPS -- not on the query's actual
# constants and not on variable names.  Caching at that granularity
# dedups adorned predicates up to variable renaming: every point query
# ``Tc("a", y)``, ``Tc("b", y)``, ... shares one closure entry.  A plan
# certificate (analysis.specialize) carries the same closure, so
# ``query --certificate`` preloads it here and skips the analysis.
# ---------------------------------------------------------------------------

_CLOSURE_CACHE_MAX = 256
_closure_cache: "OrderedDict[tuple[str, str, str, str], tuple[tuple[str, Adornment], ...]]" = (
    OrderedDict()
)


def _closure_key(program_key: str, predicate: str, suffix: str, sips: str):
    return (program_key, predicate, suffix, sips)


def clear_closure_cache() -> None:
    _closure_cache.clear()


def preload_closure(
    program_key: str,
    predicate: str,
    adornment_suffix: str,
    sips: str,
    closure: Iterable[tuple[str, str]],
) -> None:
    """Install a precomputed adornment closure (from a plan certificate).

    *closure* is the demand list in discovery order as ``(predicate,
    adornment suffix)`` pairs.  A subsequent :func:`magic_transform` for
    a matching (program, query form, SIPS) hits the cache and never runs
    ``binding_analysis``.
    """
    demand = tuple(
        (pred, Adornment(tuple(ch == "b" for ch in suffix)))
        for pred, suffix in closure
    )
    _store_closure(_closure_key(program_key, predicate, adornment_suffix, sips), demand)


def _store_closure(key, demand) -> None:
    _closure_cache[key] = demand
    _closure_cache.move_to_end(key)
    while len(_closure_cache) > _CLOSURE_CACHE_MAX:
        _closure_cache.popitem(last=False)


def demanded_closure(
    program: Program,
    query: Atom,
    sips: str = "left-to-right",
    program_key: str | None = None,
) -> tuple[Adornment, tuple[tuple[str, Adornment], ...]]:
    """The query's adornment and the reachable adornment closure, cached.

    On a miss, runs :func:`repro.analysis.absint.groundness.binding_analysis`
    and memoises its demand set; on a hit, increments the
    ``magic.closure_cache_hits`` metric and performs no analysis.
    """
    from ..obs.metrics import metrics_registry

    query_adornment = Adornment.for_atom(query, frozenset())
    if program_key is None:
        program_key = canonical_program_key(program)
    key = _closure_key(program_key, query.predicate, query_adornment.suffix, sips)
    cached = _closure_cache.get(key)
    if cached is not None:
        _closure_cache.move_to_end(key)
        metrics_registry().increment("magic.closure_cache_hits")
        return query_adornment, cached

    # Lazily imported: groundness imports Adornment and _apply_sips from
    # this module at load time.
    from ..analysis.absint.groundness import binding_analysis

    analysis = binding_analysis(program, query, sips=sips)
    _store_closure(key, analysis.demand)
    return query_adornment, analysis.demand


@dataclass(frozen=True)
class MagicRewriting:
    """The output of :func:`magic_transform`.

    Attributes:
        program: magic plus modified rules, ready for bottom-up
            evaluation together with the (unchanged) EDB.
        seed: the magic seed fact for the query.
        query_atom: the original query.
        adorned_query_predicate: the adorned name under which answers
            appear after evaluation.
    """

    program: Program
    seed: Atom
    query_atom: Atom
    adorned_query_predicate: str

    def answers(self, computed: Database) -> Database:
        """Project the adorned answers back to the original predicate.

        Tuples are filtered through full pattern matching against the
        query atom, which also enforces equality for *repeated* query
        variables (``G(x, x)`` selects the diagonal) -- the rewriting
        itself does not, since adornments track boundness only.
        """
        from ..lang.substitution import match_atom

        # Match in the backend's storage representation, decode at
        # this output boundary: answers are always plain Term rows.
        pattern = computed.adapt_atom(self.query_atom)
        out = Database()
        for row in computed.tuples(self.adorned_query_predicate):
            if match_atom(pattern, Atom(self.query_atom.predicate, row)) is not None:
                out._add_row(self.query_atom.predicate, computed.decode_row(row))
        return out


def magic_transform(
    program: Program,
    query: Atom,
    sips: str = "left-to-right",
    governor: ResourceGovernor | None = None,
) -> MagicRewriting:
    """Rewrite *program* for goal-directed evaluation of *query*.

    The query's bound arguments are its non-variable ones.  Requires a
    positive program whose predicate names do not begin with the
    reserved ``m__`` prefix.

    Args:
        sips: the sideways-information-passing strategy, i.e. the order
            in which bindings flow through each rule body.
            ``"left-to-right"`` (default) follows the written order --
            the classic presentation; ``"most-bound"`` greedily
            schedules the subgoal with the most bound argument
            positions next, which often produces more selective
            adornments.  Any SIPS yields correct answers; they differ
            only in work.
    """
    if sips not in ("left-to-right", "most-bound"):
        raise ValueError(f"unknown SIPS {sips!r}; expected 'left-to-right' or 'most-bound'")
    if not program.is_positive:
        raise UnsafeRuleError("magic-sets rewriting requires a positive program")
    for pred in program.predicates:
        if pred.startswith(_MAGIC_PREFIX) or _ADORN_SEP in pred:
            raise UnsafeRuleError(
                f"predicate {pred!r} collides with the reserved magic naming scheme"
            )
    if query.predicate not in program.idb_predicates:
        raise ValueError(
            f"query predicate {query.predicate!r} is not an IDB predicate of the program"
        )

    # The adornment discovery is a static analysis in its own right
    # (demanded-adornment fixpoint over the powerset lattice); it lives
    # in analysis.absint.groundness so the linter and ``analyze`` verb
    # can run it without rewriting, and this transform is driven by its
    # demand set -- memoised per isomorphism class in demanded_closure.
    query_adornment, closure = demanded_closure(program, query, sips=sips)
    seed_args = tuple(query.args[i] for i in query_adornment.bound_positions)
    seed = Atom(magic_name(query.predicate, query_adornment), seed_args)

    idb = program.idb_predicates
    discovered: list[tuple[str, Adornment]] = []
    out_rules: list[Rule] = []

    with trace("magic.transform", sips=sips) as span:
        for pred, adornment in closure:
            if governor is not None:
                # The adornment frontier is finite but can be exponential
                # in arity; keep the deadline/cancellation responsive.
                governor.tick()
            for rule in program.rules_for(pred):
                ordered = _apply_sips(rule, adornment, sips)
                out_rules.extend(
                    _rewrite_rule(ordered, adornment, idb, discovered)
                )
        demanded = set(closure)
        for pair in discovered:
            if pair not in demanded:
                raise RuntimeError(
                    f"binding analysis missed adornment {pair[0]}_{pair[1]}; "
                    "groundness and magic rewriting disagree on demand"
                )
        if span:
            span.add("adornments", len(demanded))
            span.add("rules_generated", len(out_rules))

    return MagicRewriting(
        program=Program(out_rules),
        seed=seed,
        query_atom=query,
        adorned_query_predicate=adorned_name(query.predicate, query_adornment),
    )


def _apply_sips(rule: Rule, head_adornment: Adornment, sips: str) -> Rule:
    """Reorder the rule body according to the chosen SIPS.

    Conjunction is commutative, so any permutation preserves semantics;
    the order only steers which bindings each subgoal's adornment sees.
    """
    if sips == "left-to-right" or len(rule.body) <= 1:
        return rule
    bound: set[Variable] = set()
    for pos in head_adornment.bound_positions:
        term = rule.head.args[pos]
        if isinstance(term, Variable):
            bound.add(term)
    remaining = list(range(len(rule.body)))
    order: list[int] = []
    while remaining:
        def key(i: int):
            atom = rule.body[i].atom
            bound_positions = sum(
                1 for t in atom.args if not isinstance(t, Variable) or t in bound
            )
            return (-bound_positions, i)

        best = min(remaining, key=key)
        order.append(best)
        remaining.remove(best)
        bound.update(rule.body[best].atom.variables())
    return Rule(rule.head, [rule.body[i] for i in order])


def _rewrite_rule(
    rule: Rule,
    head_adornment: Adornment,
    idb: frozenset[str],
    pending: list[tuple[str, Adornment]],
) -> Iterable[Rule]:
    """Produce the modified rule and its magic rules for one adorned head."""
    head = rule.head
    bound_vars: set[Variable] = set()
    for pos in head_adornment.bound_positions:
        term = head.args[pos]
        if isinstance(term, Variable):
            bound_vars.add(term)

    magic_head_args = tuple(head.args[pos] for pos in head_adornment.bound_positions)
    guard = Atom(magic_name(head.predicate, head_adornment), magic_head_args)

    transformed: list[Atom] = []
    magic_rules: list[Rule] = []
    for literal in rule.body:
        atom = literal.atom
        if atom.predicate in idb:
            sub_adornment = Adornment.for_atom(atom, frozenset(bound_vars))
            pending.append((atom.predicate, sub_adornment))
            # Magic rule: bindings available before this subgoal flow in.
            magic_args = tuple(atom.args[i] for i in sub_adornment.bound_positions)
            magic_rules.append(
                Rule(
                    Atom(magic_name(atom.predicate, sub_adornment), magic_args),
                    [Literal(guard), *map(Literal, transformed)],
                )
            )
            transformed.append(
                Atom(adorned_name(atom.predicate, sub_adornment), atom.args)
            )
        else:
            transformed.append(atom)
        bound_vars.update(atom.variables())

    modified = Rule(
        Atom(adorned_name(head.predicate, head_adornment), head.args),
        [Literal(guard), *map(Literal, transformed)],
    )
    return [modified, *magic_rules]


def answer_query(
    program: Program,
    db: Database,
    query: Atom,
    engine: EngineName = "seminaive",
    sips: str = "left-to-right",
    governor: ResourceGovernor | None = None,
    workers: int = 1,
) -> tuple[Database, EvaluationResult]:
    """Evaluate *query* over ``program(db)`` using magic sets.

    Returns the answer database (facts of the query's predicate
    matching the query's constants) and the raw evaluation result of
    the rewritten program, whose statistics reflect the goal-directed
    join work.

    For an EDB query predicate no rewriting is needed: the answers are
    selected directly from *db*.

    With a *governor*, a tripped limit degrades the inner bottom-up run
    to ``PARTIAL`` and the projected answers are a sound subset of the
    query's true answers (the rewritten program is positive, so the
    partial fixpoint under-approximates and projection is monotone).
    """
    if query.predicate not in program.idb_predicates:
        answers = Database()
        bound = {
            i: t for i, t in enumerate(query.args) if not isinstance(t, Variable)
        }
        for row in db.candidates(query.predicate, bound) if db.count(query.predicate) else ():
            answers._add_row(query.predicate, db.decode_row(row))
        return answers, EvaluationResult(db.copy(), _empty_stats())

    with trace("magic.answer_query", query=str(query)) as span:
        if governor is not None:
            governor.note(engine="magic")
        rewriting = magic_transform(program, query, sips=sips, governor=governor)
        seeded = db.copy()
        seeded.add(rewriting.seed)
        result = evaluate(
            rewriting.program, seeded, engine=engine, governor=governor, workers=workers
        )
        answers = rewriting.answers(result.database)
        if span:
            span.add("answers", len(answers))
    return answers, result


def _empty_stats():
    from .stats import EvaluationStats

    return EvaluationStats()
