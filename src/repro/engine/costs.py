"""A lightweight cost model: cardinalities, selectivities, join sizes.

The paper's introduction notes that whether adding a redundant conjunct
pays off "depends upon the sizes of the three relations, the size of
their intersection, and the available indices".  This module supplies
exactly that arithmetic: textbook System-R style estimates over the
statistics of a concrete database, used to *rank* the provably-safe
rewrites produced by :mod:`repro.core.augment` and to explain engine
behaviour in the examples.

Estimates are heuristics, not guarantees; everything here is advisory.
The semantic layers (containment, minimization, the §X recipe) never
depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..data.database import Database
from ..lang.atoms import Atom, Literal
from ..lang.rules import Rule
from ..lang.terms import Variable

#: Selectivity assumed when the statistics carry no information -- an
#: empty relation or a position with zero recorded distinct values.
#: 1.0 is the conservative "filters nothing" answer: it never makes a
#: rewrite look cheaper than the baseline on evidence that isn't there.
DEFAULT_SELECTIVITY = 1.0


@dataclass(frozen=True)
class PredicateStatistics:
    """Cardinality and per-position distinct counts for one predicate.

    *domain* is the size of the backend's interned-constant universe
    (:meth:`~repro.data.database.Database.symbol_cardinality`; 0 when
    the backend does not intern).  It refines the no-information guard
    of :meth:`selectivity`: a position with no recorded distinct counts
    can still assume values are spread over the interned domain, which
    keeps the estimates consistent with the absint interval hints on
    the columnar path instead of defaulting to "filters nothing".
    """

    predicate: str
    cardinality: int
    distinct: tuple[int, ...]  # distinct values per argument position
    domain: int = 0

    def selectivity(self, position: int) -> float:
        """Estimated fraction of rows matching one value at *position*.

        An empty relation (or a position whose distinct count is zero)
        supports no estimate at all; both fall back to the interned
        domain size when the backend exposes one, and to
        :data:`DEFAULT_SELECTIVITY` otherwise -- never a division by
        zero or a silent 0.0 that would collapse every downstream
        product.  Callers that care about emptiness test
        ``cardinality`` directly (as :func:`estimate_rule` does before
        multiplying).
        """
        if self.cardinality == 0:
            return 1.0 / self.domain if self.domain else DEFAULT_SELECTIVITY
        d = self.distinct[position]
        if d:
            return 1.0 / d
        return 1.0 / self.domain if self.domain else DEFAULT_SELECTIVITY


def collect_statistics(db: Database) -> dict[str, PredicateStatistics]:
    """Scan *db* once and summarize every stored predicate."""
    stats: dict[str, PredicateStatistics] = {}
    domain = db.symbol_cardinality()
    for pred in db.predicates:
        rows = db.tuples(pred)
        arity = db.arity(pred)
        distinct = tuple(
            len({row[i] for row in rows}) for i in range(arity)
        )
        stats[pred] = PredicateStatistics(pred, len(rows), distinct, domain)
    return stats


@dataclass
class JoinEstimate:
    """Predicted work and output size for one rule body."""

    rule: Rule
    result_rows: float
    intermediate_rows: float  # sum over join prefix sizes (work proxy)
    per_atom_rows: tuple[float, ...]

    def __str__(self) -> str:
        return (
            f"~{self.result_rows:.0f} result rows, "
            f"~{self.intermediate_rows:.0f} intermediate rows for '{self.rule}'"
        )


def estimate_rule(
    rule: Rule,
    statistics: Mapping[str, PredicateStatistics],
    order: Sequence[int] | None = None,
) -> JoinEstimate:
    """Estimate the join work of evaluating *rule* once, left to right.

    Standard independence-assumption arithmetic: each new atom
    multiplies by its cardinality, then divides by the distinct count of
    every already-bound variable position (equi-join selectivity) and of
    every constant position.  Unknown predicates count as empty.
    """
    body = [rule.body[i] for i in order] if order is not None else list(rule.body)
    bound: set[Variable] = set()
    current = 1.0
    total_intermediate = 0.0
    per_atom: list[float] = []
    for literal in body:
        if not literal.positive:
            # A negated check never grows the result; model as 0.5 filter.
            current *= 0.5
            per_atom.append(current)
            continue
        atom = literal.atom
        info = statistics.get(atom.predicate)
        if info is None or info.cardinality == 0:
            current = 0.0
            per_atom.append(0.0)
            break
        current *= info.cardinality
        for position, term in enumerate(atom.args):
            if isinstance(term, Variable):
                if term in bound:
                    current *= info.selectivity(position)
                else:
                    bound.add(term)
            else:
                current *= info.selectivity(position)
        # Repeated variables within the atom: each extra occurrence
        # filters once more.
        seen_here: set[Variable] = set()
        for position, term in enumerate(atom.args):
            if isinstance(term, Variable):
                if term in seen_here:
                    current *= info.selectivity(position)
                seen_here.add(term)
        total_intermediate += current
        per_atom.append(current)
    return JoinEstimate(
        rule=rule,
        result_rows=current,
        intermediate_rows=total_intermediate,
        per_atom_rows=tuple(per_atom),
    )


def estimate_guard_benefit(
    rule: Rule,
    guard: Atom,
    statistics: Mapping[str, PredicateStatistics],
) -> float:
    """Predicted work ratio of adding *guard* to the front of the body.

    Values below 1.0 predict a win (the guard prunes more than it
    costs); above 1.0, a loss.  Combine with
    :func:`repro.core.augment.atom_is_addable` -- this function says
    *profitable*, that one says *safe*.
    """
    baseline = estimate_rule(rule, statistics)
    guarded = Rule(rule.head, [Literal(guard), *rule.body])
    with_guard = estimate_rule(guarded, statistics)
    if baseline.intermediate_rows == 0:
        return 1.0
    return with_guard.intermediate_rows / baseline.intermediate_rows


def rank_guards(
    rule: Rule,
    guards: Sequence[Atom],
    statistics: Mapping[str, PredicateStatistics],
) -> list[tuple[Atom, float]]:
    """Sort candidate guards by predicted benefit (best first)."""
    scored = [
        (guard, estimate_guard_benefit(rule, guard, statistics)) for guard in guards
    ]
    scored.sort(key=lambda pair: pair[1])
    return scored
