"""Evaluation statistics.

The paper's motivation for minimization is that "removing redundant
parts ... reduces the number of joins done during the evaluation"
(Section I).  To make that claim measurable, every fixpoint run records
its join work:

* ``iterations`` -- rounds of the fixpoint loop,
* ``rule_firings`` -- successful body matches (one per derived head
  instantiation, including duplicates),
* ``subgoal_attempts`` -- body-atom match attempts during join search
  (the dominant cost driver; proportional to join work),
* ``facts_derived`` -- new atoms added to the database,
* ``elapsed`` -- wall-clock seconds.

Every completed ``start()``/``stop()`` run also publishes its totals to
the process-wide metrics registry (:mod:`repro.obs.metrics`), which the
``repro-datalog bench`` trajectory files snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..obs.metrics import metrics_registry


@dataclass
class EvaluationStats:
    """Mutable counters filled in by the engines."""

    iterations: int = 0
    rule_firings: int = 0
    subgoal_attempts: int = 0
    facts_derived: int = 0
    elapsed: float = 0.0
    #: Duplicate derivations the textbook semi-naive snapshot discipline
    #: suppressed (counted by compiled kernels; 0 on the reference path).
    duplicates_avoided: int = 0
    engine: str | None = field(default=None, repr=False, compare=False)
    _started: float | None = field(default=None, repr=False, compare=False)

    def start(self) -> None:
        self._started = time.perf_counter()

    def stop(self) -> None:
        """Close the current timing window; idempotent.

        Only a ``stop()`` matching an open ``start()`` accumulates into
        ``elapsed`` -- a stray second call neither clobbers nor inflates
        it.  Each effective stop publishes the run to the registry.
        """
        if self._started is None:
            return
        self.elapsed += time.perf_counter() - self._started
        self._started = None
        metrics_registry().record_evaluation(self, engine=self.engine)

    def merge(self, other: "EvaluationStats") -> None:
        """Accumulate another run's counters into this one (elapsed too)."""
        self.iterations += other.iterations
        self.rule_firings += other.rule_firings
        self.subgoal_attempts += other.subgoal_attempts
        self.facts_derived += other.facts_derived
        self.elapsed += other.elapsed
        self.duplicates_avoided += other.duplicates_avoided

    def to_dict(self) -> dict[str, float | int]:
        """The counters as a flat JSON-ready mapping (bench/profile use)."""
        return {
            "iterations": self.iterations,
            "rule_firings": self.rule_firings,
            "subgoal_attempts": self.subgoal_attempts,
            "facts_derived": self.facts_derived,
            "duplicates_avoided": self.duplicates_avoided,
            "elapsed_s": self.elapsed,
        }

    def summary(self) -> str:
        return (
            f"iterations={self.iterations} firings={self.rule_firings} "
            f"subgoals={self.subgoal_attempts} derived={self.facts_derived} "
            f"elapsed={self.elapsed * 1000:.2f}ms"
        )
