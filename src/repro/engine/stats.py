"""Evaluation statistics.

The paper's motivation for minimization is that "removing redundant
parts ... reduces the number of joins done during the evaluation"
(Section I).  To make that claim measurable, every fixpoint run records
its join work:

* ``iterations`` -- rounds of the fixpoint loop,
* ``rule_firings`` -- successful body matches (one per derived head
  instantiation, including duplicates),
* ``subgoal_attempts`` -- body-atom match attempts during join search
  (the dominant cost driver; proportional to join work),
* ``facts_derived`` -- new atoms added to the database,
* ``elapsed`` -- wall-clock seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class EvaluationStats:
    """Mutable counters filled in by the engines."""

    iterations: int = 0
    rule_firings: int = 0
    subgoal_attempts: int = 0
    facts_derived: int = 0
    elapsed: float = 0.0
    _started: float = field(default=0.0, repr=False)

    def start(self) -> None:
        self._started = time.perf_counter()

    def stop(self) -> None:
        self.elapsed = time.perf_counter() - self._started

    def merge(self, other: "EvaluationStats") -> None:
        """Accumulate another run's counters into this one."""
        self.iterations += other.iterations
        self.rule_firings += other.rule_firings
        self.subgoal_attempts += other.subgoal_attempts
        self.facts_derived += other.facts_derived
        self.elapsed += other.elapsed

    def summary(self) -> str:
        return (
            f"iterations={self.iterations} firings={self.rule_firings} "
            f"subgoals={self.subgoal_attempts} derived={self.facts_derived} "
            f"elapsed={self.elapsed * 1000:.2f}ms"
        )
