"""Semi-naive bottom-up evaluation.

The standard differential fixpoint: a rule can only derive a genuinely
new fact if at least one of its body subgoals matches a fact derived in
the *previous* iteration (the delta).  For each rule and each body
position, a variant is evaluated in which that position is forced onto
the delta relation and the others read the full database.

Correctness note: using the full database (rather than the pre-delta
snapshot) for non-delta positions can re-derive a fact through more than
one delta position in the same round; set semantics absorbs the
duplicates, so the result is identical to the naive engine -- only the
constant factor differs.  The Q7 benchmark quantifies the remaining gap
to the naive engine.

In the first round the delta is the entire input database, which makes
initial IDB facts (Section III's generalized inputs) participate
correctly.
"""

from __future__ import annotations

from ..data.database import Database
from ..errors import ResourceLimitExceeded, UnsafeRuleError
from ..lang.atoms import Atom
from ..lang.programs import Program
from ..obs.tracer import trace
from ..resilience.governor import EvaluationStatus, ResourceGovernor
from .fixpoint import EvaluationResult
from .joins import fire_rule, plan_order
from .stats import EvaluationStats


def seminaive_fixpoint(
    program: Program, db: Database, governor: ResourceGovernor | None = None
) -> EvaluationResult:
    """Compute ``P(db)`` with differential iteration.

    With a *governor*, a tripped limit stops iteration and the facts
    committed to the full database so far are returned as a ``PARTIAL``
    result (a sound under-approximation of ``P(db)`` by monotonicity;
    the interrupted round's uncommitted delta is discarded).
    """
    if not program.is_positive:
        raise UnsafeRuleError(
            "semi-naive evaluation requires a positive program; "
            "use repro.engine.stratified for programs with negation"
        )
    stats = EvaluationStats(engine="seminaive")
    stats.start()
    full = db.copy()
    status = EvaluationStatus.COMPLETE
    degradation = None
    #: (rule, delta position) -> cached join order.  Greedy planning
    #: depends only on relation sizes (for tie-breaks), so one plan per
    #: variant amortizes across all iterations.
    plans: dict[tuple[int, int], list[int]] = {}

    with trace("seminaive.eval", rules=len(program.rules)) as root:
        root.watch(stats)
        try:
            if governor is not None:
                governor.note(engine="seminaive")

            # Round 0: fire ground facts (empty bodies) and seed the delta with
            # the whole input, so every rule sees the input as "new".
            delta = db.copy()
            stats.iterations += 1
            for rule in program.rules:
                if rule.is_fact:
                    if full.add(rule.head):
                        stats.facts_derived += 1
                        delta.add(rule.head)

            while delta:
                stats.iterations += 1
                if governor is not None:
                    governor.checkpoint(full, round=stats.iterations)
                with trace(
                    "seminaive.iteration", index=stats.iterations, delta=len(delta)
                ) as iteration:
                    iteration.watch(stats)
                    new_delta = Database()
                    for rule_index, rule in enumerate(program.rules):
                        if rule.is_fact:
                            continue
                        if governor is not None:
                            governor.note(rule_index=rule_index)
                            governor.tick()
                        with trace("seminaive.rule", rule=rule_index) as span:
                            span.watch(stats)
                            derived = _fire_rule_seminaive(
                                rule.head, rule, full, delta, stats, plans, rule_index,
                                governor,
                            )
                            for atom in derived:
                                if atom not in full and atom not in new_delta:
                                    new_delta.add(atom)
                    added = full.update(new_delta)
                    stats.facts_derived += added
                    if governor is not None:
                        governor.add_facts(added)
                    delta = new_delta
        except ResourceLimitExceeded as error:
            status = EvaluationStatus.PARTIAL
            degradation = error.report
        if root:
            root.add("index_probes", full.probe_count())
            root.add("full_scans", full.scan_count())
    stats.stop()
    return EvaluationResult(full, stats, status=status, degradation=degradation)


def _fire_rule_seminaive(
    head: Atom,
    rule,
    full: Database,
    delta: Database,
    stats: EvaluationStats,
    plans: dict[tuple[int, int], list[int]],
    rule_index: int,
    governor: ResourceGovernor | None = None,
) -> set[Atom]:
    """Union of the rule's delta-variants for this iteration."""
    derived: set[Atom] = set()
    body = rule.body
    head_vars = frozenset(head.variables())
    for position, literal in enumerate(body):
        if not literal.positive:
            continue
        if delta.count(literal.predicate) == 0:
            continue
        key = (rule_index, position)
        order = plans.get(key)
        if order is None:
            order = plan_order(
                body, full, prefer_vars=head_vars, first=position
            )
            plans[key] = order
        derived.update(
            fire_rule(
                full,
                head,
                body,
                stats=stats,
                source_for={position: delta},
                order=order,
                governor=governor,
            )
        )
    return derived
