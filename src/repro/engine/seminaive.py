"""Semi-naive bottom-up evaluation with textbook delta splitting.

The standard differential fixpoint: a rule can only derive a genuinely
new fact if at least one of its body subgoals matches a fact derived in
the *previous* iteration (the delta).  For each rule and each body
position, a variant is evaluated in which that position is forced onto
the delta relation.

The non-delta positions follow the **textbook** discipline: with the
delta pinned at body position *i*, positions before *i* read the
pre-round snapshot ``F_{k-1}`` and positions after *i* read the full
database ``F_k = F_{k-1} ∪ Δ``.  A body instantiation whose rows touch
Δ at positions ``D`` is then derived exactly once (by the variant
pinned at ``min(D)``) instead of ``|D|`` times -- the re-derivations the
older "non-delta positions read everything" discipline produced are
what made this engine fire *more* rules than naive on multi-atom
bodies.  The suppressed duplicates are counted as
``duplicates_avoided`` in the stats.

The default execution path runs compiled :class:`~repro.engine.compile.JoinKernel`
programs (one per rule/delta-position variant, cached across rounds);
``use_compiled=False`` keeps the original
:func:`~repro.engine.joins.fire_rule` reference path for differential
testing.

In the first round the delta is the entire input database (snapshot
``F_0 = ∅``), which makes initial IDB facts (Section III's generalized
inputs) participate correctly.
"""

from __future__ import annotations

from ..data.database import Database
from ..errors import ResourceLimitExceeded, UnsafeRuleError
from ..lang.atoms import Atom
from ..lang.programs import Program
from ..obs.tracer import trace
from ..resilience.governor import EvaluationStatus, ResourceGovernor
from .compile import KernelCache, cardinality_hint_provider
from .fixpoint import EvaluationResult
from .joins import delta_variant_positions, fire_rule, plan_order
from .stats import EvaluationStats


def seminaive_fixpoint(
    program: Program,
    db: Database,
    governor: ResourceGovernor | None = None,
    use_compiled: bool = True,
    resume_state=None,
) -> EvaluationResult:
    """Compute ``P(db)`` with differential iteration.

    With a *governor*, a tripped limit stops iteration and the facts
    committed to the full database so far are returned as a ``PARTIAL``
    result (a sound under-approximation of ``P(db)`` by monotonicity;
    the interrupted round's uncommitted delta is discarded).

    *use_compiled* selects the kernel path (default) or the
    ``fire_rule`` reference path; both compute the same fixpoint.

    *resume_state* (a
    :class:`~repro.resilience.checkpoint.ResumeState`-shaped object with
    ``delta`` and ``round``) re-enters the loop mid-fixpoint: *db* is
    taken as ``F_{k-1}`` verbatim (round 0 seeding is skipped -- fact
    rules already fired before the checkpoint), the delta frontier is
    the saved ``Δ_{k-1}``, and the pre-round snapshot is reconstructed
    as ``F_{k-1} − Δ_{k-1}`` (the invariant ``full = snapshot ⊎ delta``
    holds at every checkpoint site, so no third database is persisted).
    Replaying round *k* on this exact state continues the original
    fixpoint unchanged.
    """
    if not program.is_positive:
        raise UnsafeRuleError(
            "semi-naive evaluation requires a positive program; "
            "use repro.engine.stratified for programs with negation"
        )
    stats = EvaluationStats(engine="seminaive")
    stats.start()
    full = db.copy()
    status = EvaluationStatus.COMPLETE
    degradation = None
    #: (rule, delta position) -> cached join order (reference path).
    plans: dict[tuple[int, int], list[int]] = {}
    #: Per rule: the body positions that need their own delta variant
    #: (symmetric redundant-atom positions collapse to the first).
    variants = [
        () if rule.is_fact else delta_variant_positions(rule.head, rule.body)
        for rule in program.rules
    ]
    kernels = (
        KernelCache(
            program.rules, full, hint_provider=cardinality_hint_provider(program, full)
        )
        if use_compiled
        else None
    )

    with trace("seminaive.eval", rules=len(program.rules)) as root:
        root.watch(stats)
        try:
            if governor is not None:
                governor.note(engine="seminaive")

            if resume_state is not None:
                # Mid-fixpoint re-entry from a durable checkpoint: *db*
                # is F_{k-1}, the saved delta is Δ_{k-1}; reconstruct
                # snapshot = full − delta and rejoin at round k (the
                # loop header re-increments iterations to it).
                delta = resume_state.delta.copy()
                snapshot = full.copy()
                snapshot.discard_all(delta.atoms())
                stats.iterations = resume_state.round - 1
            else:
                # Round 0: fire ground facts (empty bodies) and seed the
                # delta with the whole input, so every rule sees the
                # input as "new".  The pre-round snapshot F_0 starts
                # empty; the invariant full == snapshot ∪ delta holds at
                # the top of every round.
                delta = db.copy()
                snapshot = full.empty_like()
                stats.iterations += 1
                for rule in program.rules:
                    if rule.is_fact:
                        if full.add(rule.head):
                            stats.facts_derived += 1
                            delta.add(rule.head)

            while delta:
                stats.iterations += 1
                if governor is not None:
                    governor.checkpoint(full, round=stats.iterations, delta=delta)
                with trace(
                    "seminaive.iteration", index=stats.iterations, delta=len(delta)
                ) as iteration:
                    iteration.watch(stats)
                    new_delta = full.empty_like()
                    for rule_index, rule in enumerate(program.rules):
                        if rule.is_fact:
                            continue
                        if governor is not None:
                            governor.note(rule_index=rule_index)
                            governor.tick()
                        with trace("seminaive.rule", rule=rule_index) as span:
                            span.watch(stats)
                            if kernels is not None:
                                derived = _fire_rule_compiled(
                                    rule, kernels, rule_index, full, delta,
                                    snapshot, stats, governor,
                                    variants[rule_index],
                                )
                            else:
                                derived = _fire_rule_seminaive(
                                    rule.head, rule, full, delta, stats, plans,
                                    rule_index, governor, variants[rule_index],
                                )
                            for atom in derived:
                                if atom not in full and atom not in new_delta:
                                    new_delta.add(atom)
                    snapshot.update(delta)
                    added = full.update(new_delta)
                    stats.facts_derived += added
                    if governor is not None:
                        governor.add_facts(added)
                    delta = new_delta
        except ResourceLimitExceeded as error:
            status = EvaluationStatus.PARTIAL
            degradation = error.report
        if root:
            root.add("index_probes", full.probe_count())
            root.add("full_scans", full.scan_count())
    stats.stop()
    return EvaluationResult(full, stats, status=status, degradation=degradation)


def _fire_rule_seminaive(
    head: Atom,
    rule,
    full: Database,
    delta: Database,
    stats: EvaluationStats,
    plans: dict[tuple[int, int], list[int]],
    rule_index: int,
    governor: ResourceGovernor | None = None,
    positions: tuple[int, ...] | None = None,
) -> set[Atom]:
    """Union of the rule's delta-variants (reference path).

    Non-delta positions read the full database here, so a fact reachable
    through several delta positions is re-derived by each variant; the
    compiled path's snapshot discipline eliminates those duplicates.
    """
    derived: set[Atom] = set()
    body = rule.body
    head_vars = frozenset(head.variables())
    if positions is None:
        positions = delta_variant_positions(head, body)
    for position in positions:
        literal = body[position]
        if delta.count(literal.predicate) == 0:
            continue
        key = (rule_index, position)
        order = plans.get(key)
        if order is None:
            order = plan_order(
                body, full, prefer_vars=head_vars, first=position
            )
            plans[key] = order
        derived.update(
            fire_rule(
                full,
                head,
                body,
                stats=stats,
                source_for={position: delta},
                order=order,
                governor=governor,
            )
        )
    return derived


def _fire_rule_compiled(
    rule,
    kernels: KernelCache,
    rule_index: int,
    full: Database,
    delta: Database,
    snapshot: Database,
    stats: EvaluationStats,
    governor: ResourceGovernor | None,
    positions: tuple[int, ...] | None = None,
) -> set[Atom]:
    """Union of the rule's delta-variants under the textbook discipline."""
    derived: set[Atom] = set()
    if positions is None:
        positions = delta_variant_positions(rule.head, rule.body)
    for position in positions:
        literal = rule.body[position]
        if delta.count(literal.predicate) == 0:
            continue
        if position and not snapshot:
            # First round: the snapshot F_0 is empty, so any variant
            # with a (positive) body literal before the delta position
            # cannot match -- only the position-0 variant can fire.
            continue
        derived.update(
            kernels.kernel(rule_index, position).run(
                full,
                delta=delta,
                before=snapshot,
                stats=stats,
                governor=governor,
                count_avoided=True,
            )
        )
    return derived
