"""Supplementary magic sets (Beeri--Ramakrishnan).

The plain magic-sets rewriting (:mod:`repro.engine.magic`) generates,
for each IDB subgoal, a magic rule whose body repeats the *prefix* of
the original rule body -- so a rule with several IDB subgoals evaluates
its prefix joins once per magic rule plus once for the modified rule.
The *supplementary* variant factors each prefix into a chain of
``sup`` predicates computed once and shared:

    sup_r_0(ū0)  :- m_p(x̄b).
    sup_r_i(ūi)  :- sup_r_{i-1}(ū_{i-1}), B_i'.
    m_q(v̄)      :- sup_r_{i-1}(ū_{i-1}).          (for IDB B_i)
    p'(head args) :- sup_r_n(ū_n).

where ``ūi`` keeps exactly the variables needed later (by a subsequent
subgoal or the head) -- the standard projection that makes the chain
narrow.

Same answers as plain magic on every query (asserted in the tests);
the benchmark records the join-work difference on rules with multiple
IDB subgoals.
"""

from __future__ import annotations

from ..errors import UnsafeRuleError
from ..lang.atoms import Atom, Literal
from ..lang.programs import Program
from ..lang.rules import Rule
from ..lang.terms import Term, Variable
from ..obs.tracer import trace
from .magic import (
    Adornment,
    MagicRewriting,
    _ADORN_SEP,
    _MAGIC_PREFIX,
    adorned_name,
    magic_name,
)

_SUP_PREFIX = "sup__"


def supplementary_magic_transform(
    program: Program, query: Atom, governor=None
) -> MagicRewriting:
    """Rewrite *program* for *query* with supplementary predicates.

    Interface and guarantees match
    :func:`repro.engine.magic.magic_transform`; only the generated rule
    set differs.
    """
    if not program.is_positive:
        raise UnsafeRuleError("magic-sets rewriting requires a positive program")
    for pred in program.predicates:
        if (
            pred.startswith(_MAGIC_PREFIX)
            or pred.startswith(_SUP_PREFIX)
            or _ADORN_SEP in pred
        ):
            raise UnsafeRuleError(
                f"predicate {pred!r} collides with the reserved magic naming scheme"
            )
    if query.predicate not in program.idb_predicates:
        raise ValueError(
            f"query predicate {query.predicate!r} is not an IDB predicate of the program"
        )

    query_adornment = Adornment.for_atom(query, frozenset())
    seed_args = tuple(query.args[i] for i in query_adornment.bound_positions)
    seed = Atom(magic_name(query.predicate, query_adornment), seed_args)

    idb = program.idb_predicates
    pending: list[tuple[str, Adornment]] = [(query.predicate, query_adornment)]
    done: set[tuple[str, Adornment]] = set()
    out_rules: list[Rule] = []
    rule_serial = 0

    with trace("supplementary.transform") as span:
        while pending:
            if governor is not None:
                governor.tick()
            pred, adornment = pending.pop()
            if (pred, adornment) in done:
                continue
            done.add((pred, adornment))
            for rule in program.rules_for(pred):
                out_rules.extend(
                    _rewrite_rule_supplementary(
                        rule, adornment, idb, pending, rule_serial
                    )
                )
                rule_serial += 1
        if span:
            span.add("adornments", len(done))
            span.add("rules_generated", len(out_rules))

    return MagicRewriting(
        program=Program(out_rules),
        seed=seed,
        query_atom=query,
        adorned_query_predicate=adorned_name(query.predicate, query_adornment),
    )


def answer_query_supplementary(
    program: Program,
    db,
    query: Atom,
    engine: str = "seminaive",
    governor=None,
    workers: int = 1,
):
    """Evaluate *query* via the supplementary rewriting.

    Same contract as :func:`repro.engine.magic.answer_query`, including
    the governed-degradation behaviour: a PARTIAL inner run projects to
    a sound subset of the true answers.
    """
    from .fixpoint import evaluate

    with trace("supplementary.answer_query", query=str(query)) as span:
        if governor is not None:
            governor.note(engine="supplementary")
        rewriting = supplementary_magic_transform(program, query, governor=governor)
        seeded = db.copy()
        seeded.add(rewriting.seed)
        result = evaluate(
            rewriting.program, seeded, engine=engine, governor=governor, workers=workers
        )
        answers = rewriting.answers(result.database)
        if span:
            span.add("answers", len(answers))
    return answers, result


def _needed_after(
    body: tuple[Literal, ...], head: Atom
) -> list[frozenset[Variable]]:
    """``needed[i]`` = variables required by subgoals ``i..n-1`` or the head."""
    needed: list[frozenset[Variable]] = [frozenset()] * (len(body) + 1)
    acc = frozenset(head.variables())
    needed[len(body)] = acc
    for i in range(len(body) - 1, -1, -1):
        acc = acc | body[i].atom.variable_set()
        needed[i] = acc
    return needed


def _rewrite_rule_supplementary(
    rule: Rule,
    head_adornment: Adornment,
    idb: frozenset[str],
    pending: list[tuple[str, Adornment]],
    serial: int,
) -> list[Rule]:
    head = rule.head
    body = rule.body
    suffix = f"{serial}{_ADORN_SEP}{head_adornment.suffix}"

    bound_vars: set[Variable] = set()
    for pos in head_adornment.bound_positions:
        term = head.args[pos]
        if isinstance(term, Variable):
            bound_vars.add(term)

    magic_head_args: tuple[Term, ...] = tuple(
        head.args[pos] for pos in head_adornment.bound_positions
    )
    guard = Atom(magic_name(head.predicate, head_adornment), magic_head_args)

    needed = _needed_after(body, head)

    def sup_atom(stage: int, available: set[Variable]) -> Atom:
        keep = sorted(available & set(needed[stage]), key=lambda v: v.name)
        return Atom(f"{_SUP_PREFIX}{head.predicate}{_ADORN_SEP}{suffix}{_ADORN_SEP}{stage}", tuple(keep))

    out: list[Rule] = []
    available = set(bound_vars)
    previous = sup_atom(0, available)
    # sup_0 receives the bound head arguments from the magic guard.
    out.append(Rule(previous, [Literal(guard)]))

    for index, literal in enumerate(body):
        atom = literal.atom
        if atom.predicate in idb:
            sub_adornment = Adornment.for_atom(atom, frozenset(available))
            pending.append((atom.predicate, sub_adornment))
            magic_args = tuple(
                atom.args[i] for i in sub_adornment.bound_positions
            )
            out.append(
                Rule(
                    Atom(magic_name(atom.predicate, sub_adornment), magic_args),
                    [Literal(previous)],
                )
            )
            step_atom = Atom(adorned_name(atom.predicate, sub_adornment), atom.args)
        else:
            step_atom = atom
        available |= atom.variable_set()
        nxt = sup_atom(index + 1, available)
        out.append(Rule(nxt, [Literal(previous), Literal(step_atom)]))
        previous = nxt

    out.append(
        Rule(
            Atom(adorned_name(head.predicate, head_adornment), head.args),
            [Literal(previous)],
        )
    )
    return out
