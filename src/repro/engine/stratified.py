"""Stratified negation.

The paper's conclusion announces that "the results on uniform
containment and minimization can be extended to Datalog programs with
stratified negation"; this module supplies the evaluation substrate for
that extension: stratification of a program with negated body literals
and stratum-by-stratum semi-naive evaluation computing the perfect
(standard) model.

A program is stratifiable iff no cycle of its dependence graph contains
a negative edge.  Strata are computed by a longest-path style fixpoint:
``stratum(head) >= stratum(body predicate)`` for positive dependencies
and strictly greater for negative ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.database import Database
from ..errors import ResourceLimitExceeded, StratificationError
from ..lang.programs import Program
from ..resilience.governor import EvaluationStatus, ResourceGovernor
from .fixpoint import EvaluationResult
from .seminaive import seminaive_fixpoint
from .joins import fire_rule
from .stats import EvaluationStats


@dataclass(frozen=True)
class Stratification:
    """An assignment of IDB predicates to strata ``0..n-1``."""

    stratum_of: dict[str, int]
    layers: tuple[frozenset[str], ...]

    @property
    def depth(self) -> int:
        return len(self.layers)


def stratify(program: Program) -> Stratification:
    """Compute a stratification or raise :class:`StratificationError`."""
    idb = program.idb_predicates
    stratum = {pred: 0 for pred in idb}
    # Relaxation: at most |idb| rounds; one more means a negative cycle.
    for round_number in range(len(idb) + 1):
        changed = False
        for rule in program.rules:
            head = rule.head.predicate
            for literal in rule.body:
                pred = literal.predicate
                if pred not in idb:
                    continue
                needed = stratum[pred] + (0 if literal.positive else 1)
                if stratum[head] < needed:
                    stratum[head] = needed
                    changed = True
        if not changed:
            break
    else:
        raise StratificationError(
            "program uses negation through recursion and cannot be stratified"
        )
    if not idb:
        return Stratification({}, ())
    depth = max(stratum.values()) + 1
    layers = tuple(
        frozenset(p for p, s in stratum.items() if s == i) for i in range(depth)
    )
    return Stratification(stratum, layers)


def evaluate_stratified(
    program: Program, db: Database, governor: ResourceGovernor | None = None
) -> EvaluationResult:
    """Compute the perfect model of a stratified program over *db*.

    Each stratum is evaluated to fixpoint with the semi-naive engine;
    negated literals consult the database computed by lower strata,
    which is complete by the time they are read.

    With a *governor*, a tripped limit returns the facts derived so far
    as a ``PARTIAL`` result with the interrupted stratum in the
    :class:`~repro.resilience.DegradationReport`.  The partial database
    is a subset of the perfect model: a rule with negation only fires
    after its negated predicates' strata completed, so interruption can
    under-derive but never mis-derive.
    """
    stratification = stratify(program)
    stats = EvaluationStats(engine="stratified")
    stats.start()
    current = db.copy()
    status = EvaluationStatus.COMPLETE
    degradation = None
    try:
        if governor is not None:
            governor.note(engine="stratified")
        for stratum_index, layer in enumerate(stratification.layers):
            if governor is not None:
                governor.note(stratum=stratum_index)
                governor.checkpoint(current)
            layer_rules = [r for r in program.rules if r.head.predicate in layer]
            positive = [r for r in layer_rules if r.is_positive]
            negated = [r for r in layer_rules if not r.is_positive]
            # Rules with negation in this stratum only negate lower strata
            # (guaranteed by stratification), so their negated subgoals are
            # already final; iterate them together with the positive ones
            # until the stratum is saturated.
            changed = True
            while changed:
                changed = False
                if positive:
                    result = seminaive_fixpoint(Program(positive), current, governor)
                    stats.merge(result.stats)
                    if result.is_partial:
                        # The sub-fixpoint already degraded gracefully;
                        # propagate its report and stop deriving.
                        current = result.database
                        status = EvaluationStatus.PARTIAL
                        degradation = result.degradation
                        raise _StratumInterrupted()
                    if len(result.database) > len(current):
                        changed = True
                    current = result.database
                for rule in negated:
                    if governor is not None:
                        governor.tick()
                    derived = fire_rule(
                        current, rule.head, rule.body, stats=stats, governor=governor
                    )
                    for atom in derived:
                        if current.add(atom):
                            stats.facts_derived += 1
                            if governor is not None:
                                governor.add_facts(1)
                            changed = True
    except _StratumInterrupted:
        pass
    except ResourceLimitExceeded as error:
        status = EvaluationStatus.PARTIAL
        degradation = error.report
    stats.stop()
    stats.elapsed = max(stats.elapsed, 0.0)
    return EvaluationResult(current, stats, status=status, degradation=degradation)


class _StratumInterrupted(Exception):
    """Internal control flow: a governed sub-fixpoint returned PARTIAL."""
