"""Incremental maintenance of materialized Datalog views (DRed).

A database system that materializes a program's IDB must maintain it as
the EDB changes.  Insertions are easy -- semi-naive evaluation seeded
with the new facts.  Deletions are the classic hard case, solved by
Gupta--Mumick--Subrahmanian's *delete-and-rederive* (DRed):

1. **over-delete**: remove every fact with *some* derivation using a
   deleted fact (computed as a delta fixpoint over the rules);
2. **rederive**: re-prove over-deleted facts that still have an
   alternative derivation from the surviving database;
3. the net deletions are the over-deleted facts that failed step 2.

:class:`MaterializedView` wraps a program plus its computed database
and offers ``insert`` / ``delete`` with counters, asserting nothing
about negation (positive programs only -- the stratified extension
would maintain per-stratum, which is out of scope here).

Resource governance is **transactional** here, not degrading: an
interrupted over-delete has removed facts that a completed rederive
step would have restored, so a partial maintenance state is *not* a
sound under-approximation of anything.  When a governed operation trips
a limit, the view rolls back to its pre-operation state and the
:class:`~repro.errors.ResourceLimitExceeded` propagates -- the one
engine where ``PARTIAL`` would be a lie.

Protected facts: facts present in the *base* (given) database are never
deleted by maintenance unless explicitly deleted themselves, matching
the paper's convention that the EDB-part of the output equals the
input.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.database import Database
from ..errors import GroundnessError, ResourceLimitExceeded, UnsafeRuleError
from ..lang.atoms import Atom
from ..lang.programs import Program
from ..lang.terms import Variable
from ..obs.tracer import trace
from ..resilience.governor import ResourceGovernor
from .compile import KernelCache
from .joins import body_witness, delta_variant_positions, fire_rule, plan_order
from .stats import EvaluationStats


@dataclass
class MaintenanceStats:
    """Work counters for one maintenance operation."""

    inserted: int = 0
    deleted: int = 0
    overdeleted: int = 0
    rederived: int = 0


class MaterializedView:
    """A program's output kept up to date under fact insertions/deletions."""

    def __init__(
        self,
        program: Program,
        base: Database,
        governor: ResourceGovernor | None = None,
        use_compiled: bool = True,
    ):
        if not program.is_positive:
            raise UnsafeRuleError("incremental maintenance requires a positive program")
        from .fixpoint import evaluate

        self.program = program
        self.governor = governor
        #: The *given* facts (EDB plus any initial IDB facts): protected.
        self._base = base.copy()
        # A partially-materialized view cannot be maintained (deltas
        # against it would be wrong), so initial evaluation must finish.
        result = evaluate(program, base, governor=governor, on_limit="raise")
        self._materialized = result.database
        # Delta propagation here pins Δ at one position and reads the
        # materialized database everywhere else (before=None below):
        # during over-deletion there is no meaningful pre-round snapshot.
        self._kernels = (
            KernelCache(program.rules, self._materialized) if use_compiled else None
        )
        # Join orders for goal-directed rederivation, cached per
        # (head predicate, rule): the initially-bound set (the head
        # variables) never varies, so the plan is stable across
        # delete operations.
        self._rederive_plans: dict[tuple[str, int], list[int]] = {}
        # Per rule: body positions needing their own delta variant
        # (symmetric redundant-atom positions collapse to the first).
        self._variant_positions = [
            () if rule.is_fact else delta_variant_positions(rule.head, rule.body)
            for rule in program.rules
        ]
        # Per (rule, position): argument positions of the pinned literal
        # holding a variable that occurs nowhere else in the rule.  Delta
        # rows differing only there drive identical variant joins, so
        # :meth:`_fire_variant` projects the delta down to one
        # representative per distinct non-private prefix.
        self._private_positions: dict[tuple[int, int], frozenset[int]] = {}
        for rule_index, rule in enumerate(program.rules):
            if rule.is_fact:
                continue
            counts: dict = {}
            for atom in (rule.head, *(lit.atom for lit in rule.body)):
                for term in atom.args:
                    if isinstance(term, Variable):
                        counts[term] = counts.get(term, 0) + 1
            for position in self._variant_positions[rule_index]:
                private = frozenset(
                    pos
                    for pos, term in enumerate(rule.body[position].atom.args)
                    if isinstance(term, Variable) and counts[term] == 1
                )
                if private:
                    self._private_positions[(rule_index, position)] = private

    # -- read access ---------------------------------------------------------
    @property
    def database(self) -> Database:
        """The maintained output (do not mutate; use insert/delete)."""
        return self._materialized

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._materialized

    def __len__(self) -> int:
        return len(self._materialized)

    # -- insertions ----------------------------------------------------------
    def insert(self, atom: Atom) -> MaintenanceStats:
        """Add one given fact and propagate its consequences."""
        return self.insert_all([atom])

    def insert_all(self, atoms) -> MaintenanceStats:
        """Add several given facts; one semi-naive propagation pass.

        Governed runs are transactional: on a tripped limit the view
        rolls back and :class:`ResourceLimitExceeded` propagates.
        """
        stats = MaintenanceStats()
        snapshot = self._snapshot()
        try:
            with trace("incremental.insert") as span:
                governor = self.governor
                if governor is not None:
                    governor.note(engine="incremental")
                delta = self._materialized.empty_like()
                for atom in atoms:
                    if not atom.is_ground:
                        raise GroundnessError(f"cannot insert non-ground atom {atom}")
                    self._base.add(atom)
                    if self._materialized.add(atom):
                        delta.add(atom)
                        stats.inserted += 1
                work = EvaluationStats()
                span.watch(work)
                rounds = 0
                while delta:
                    rounds += 1
                    if governor is not None:
                        governor.checkpoint(self._materialized, round=rounds)
                    new_delta = self._materialized.empty_like()
                    for rule_index, rule in enumerate(self.program.rules):
                        if rule.is_fact:
                            continue
                        for position in self._variant_positions[rule_index]:
                            if delta.count(rule.body[position].predicate) == 0:
                                continue
                            derived = self._fire_variant(
                                rule_index, rule, position, delta, work, governor
                            )
                            for fact in derived:
                                if fact not in self._materialized and fact not in new_delta:
                                    new_delta.add(fact)
                    added = self._materialized.update(new_delta)
                    stats.inserted += added
                    if governor is not None:
                        governor.add_facts(added)
                    delta = new_delta
                if span:
                    span.add("inserted", stats.inserted)
        except ResourceLimitExceeded:
            self._rollback(snapshot)
            raise
        return stats

    # -- deletions -----------------------------------------------------------
    def delete(self, atom: Atom) -> MaintenanceStats:
        """Remove one given fact, DRed-maintaining the consequences."""
        return self.delete_all([atom])

    def delete_all(self, atoms) -> MaintenanceStats:
        """Remove several given facts (delete-and-rederive).

        An interrupted over-delete/rederive would leave the view
        unsound (over-deleted facts not yet re-proven), so a governed
        trip rolls back the whole operation and re-raises.
        """
        stats = MaintenanceStats()
        snapshot = self._snapshot()
        try:
            with trace("incremental.delete") as span:
                if self.governor is not None:
                    self.governor.note(engine="incremental")
                seed = self._materialized.empty_like()
                for atom in atoms:
                    if self._base.discard(atom):
                        seed.add(atom)
                if not seed:
                    return stats

                # Step 1: over-delete everything with a derivation through a
                # deleted fact.
                with trace("incremental.overdelete"):
                    overdeleted = self._overdelete(seed)
                stats.overdeleted = len(overdeleted)

                survivor = self._materialized.copy()
                survivor.discard_all(overdeleted.atoms())

                # Step 2: rederive from the surviving database plus the
                # protected base facts that were not themselves deleted.
                with trace("incremental.rederive"):
                    rederived = self._rederive(overdeleted, survivor)
                stats.rederived = len(rederived)

                stats.deleted = len(overdeleted) - len(rederived)
                self._materialized = survivor
                self._materialized.update(rederived)
                if span:
                    span.add("overdeleted", stats.overdeleted)
                    span.add("rederived", stats.rederived)
                    span.add("deleted", stats.deleted)
        except ResourceLimitExceeded:
            self._rollback(snapshot)
            raise
        return stats

    def _fire_variant(
        self,
        rule_index: int,
        rule,
        position: int,
        delta: Database,
        work: EvaluationStats,
        governor: ResourceGovernor | None,
    ) -> set[Atom]:
        """One delta-variant against the materialized database."""
        private = self._private_positions.get((rule_index, position))
        if private is not None:
            delta = self._project_delta(
                delta, rule.body[position].predicate, private
            )
        if self._kernels is not None:
            return self._kernels.kernel(rule_index, position).run(
                self._materialized, delta=delta, stats=work, governor=governor
            )
        return fire_rule(
            self._materialized,
            rule.head,
            rule.body,
            stats=work,
            source_for={position: delta},
            governor=governor,
        )

    @staticmethod
    def _project_delta(
        delta: Database, predicate: str, private: frozenset[int]
    ) -> Database:
        """One delta row per distinct value of the non-private positions.

        The pinned literal's private variables bind values no other
        subgoal (and not the head) reads, so delta rows that agree
        everywhere else drive the exact same join and derive the exact
        same heads -- keeping one representative is a sound projection
        pushdown.  Returns *delta* itself when there is nothing to drop.
        """
        rows = delta.tuples(predicate)
        keep: dict[tuple, tuple] = {}
        for row in rows:
            key = tuple(v for pos, v in enumerate(row) if pos not in private)
            keep.setdefault(key, row)
        if len(keep) == len(rows):
            return delta
        reduced = delta.empty_like()
        for row in keep.values():
            reduced._add_row(predicate, row)
        return reduced

    # -- governed-transaction helpers ----------------------------------------
    def _snapshot(self):
        """Pre-operation state, captured only when a governor is active."""
        if self.governor is None:
            return None
        return (self._base.copy(), self._materialized.copy())

    def _rollback(self, snapshot) -> None:
        if snapshot is not None:
            self._base, self._materialized = snapshot

    def _overdelete(self, seed: Database) -> Database:
        """Facts with some derivation using a seed fact (incl. the seed)."""
        overdeleted = seed.copy()
        delta = seed.copy()
        work = EvaluationStats()
        while delta:
            if self.governor is not None:
                self.governor.checkpoint(self._materialized)
            new_delta = self._materialized.empty_like()
            for rule_index, rule in enumerate(self.program.rules):
                if rule.is_fact:
                    continue
                for position in self._variant_positions[rule_index]:
                    if delta.count(rule.body[position].predicate) == 0:
                        continue
                    derived = self._fire_variant(
                        rule_index, rule, position, delta, work, self.governor
                    )
                    for fact in derived:
                        # Base facts not explicitly deleted are protected.
                        if fact in self._base:
                            continue
                        if fact not in overdeleted:
                            new_delta.add(fact)
            overdeleted.update(new_delta)
            delta = new_delta
        return overdeleted

    def _rederive(self, overdeleted: Database, survivor: Database) -> Database:
        """Over-deleted facts still derivable from the survivors.

        Goal-directed: each over-deleted fact is unified with the heads
        of its predicate's rules and the body is probed with the head
        bindings pre-seeded -- a bound existence check, not a full join
        of every rule body against the whole database.  Rederived facts
        re-enter ``current``, and the pass loop repeats so facts whose
        alternative derivations go through other over-deleted facts are
        restored in dependency order.
        """
        rederived = self._materialized.empty_like()
        work = EvaluationStats()
        current = survivor.copy()
        # Fact rules are unconditionally derivable; restore them up front.
        for rule in self.program.rules:
            if rule.is_fact and rule.head in overdeleted and rule.head not in rederived:
                rederived.add(rule.head)
                current.add(rule.head)
        pending = [
            (pred, row)
            for pred in sorted(overdeleted.predicates)
            for row in overdeleted.tuples(pred)
            if not rederived.contains_tuple(pred, row)
        ]
        changed = True
        while changed and pending:
            if self.governor is not None:
                self.governor.checkpoint(current)
            changed = False
            still: list[tuple[str, tuple]] = []
            for pred, row in pending:
                if self._rederivable(pred, row, current, work):
                    rederived._add_row(pred, row)
                    current._add_row(pred, row)
                    changed = True
                else:
                    still.append((pred, row))
            pending = still
        return rederived

    def _rederivable(
        self, predicate: str, row: tuple, current: Database, work: EvaluationStats
    ) -> bool:
        """Does some rule derive *row* from *current*?

        *row* is in ``current``'s storage representation (it came out of
        a database sharing the same backend), so head constants are
        compared through ``store_term`` and the seeded bindings probe
        indexes directly.  With every head variable bound up front the
        body walk is a pure existence check
        (:func:`~repro.engine.joins.body_witness`) that stops at the
        first witness.
        """
        store = current.store_term
        for rule_index, rule in enumerate(self.program.rules_for(predicate)):
            if rule.is_fact:
                continue
            bindings: dict = {}
            consistent = True
            for position, term in enumerate(rule.head.args):
                value = row[position]
                if isinstance(term, Variable):
                    existing = bindings.get(term)
                    if existing is None:
                        bindings[term] = value
                    elif existing != value:
                        consistent = False
                        break
                elif store(term) != value:
                    consistent = False
                    break
            if not consistent:
                continue
            if self.governor is not None:
                self.governor.tick()
            bound_vars = frozenset(bindings)
            plan_key = (predicate, rule_index)
            order = self._rederive_plans.get(plan_key)
            if order is None:
                order = plan_order(
                    rule.body, current, bound_vars, prefer_vars=bound_vars
                )
                self._rederive_plans[plan_key] = order
            if body_witness(current, rule.body, bindings, order, stats=work):
                return True
        return False
