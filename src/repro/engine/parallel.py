"""Parallel evaluation: SCC-wave scheduling + hash-partitioned delta joins.

ROADMAP item 3.  The paper's optimizations (semi-naive Δ-splitting,
magic-style specialization) cut the *work per round*; this module does
that work on more than one core, at two granularities:

* **Inter-stratum parallelism** (:func:`parallel_stratified`): the
  stratified engine's dependence structure is refined to its SCC
  condensation, SCCs are grouped into *waves* by longest path, and the
  mutually independent SCCs of one wave are evaluated concurrently on
  the worker pool, merging derived relations at the dependence edges
  (i.e. at the wave barrier).  Stratification guarantees every negated
  predicate is complete before any wave that reads it.

* **Intra-stratum sharding** (:func:`parallel_seminaive_fixpoint`):
  within one semi-naive round, the delta is hash-partitioned by the
  join key the compiled :class:`~repro.engine.compile.JoinKernel`
  chose (the first delta-step slot the later steps read), each worker
  runs every rule variant against *its shard of Δ* plus replicas of
  the snapshot/full databases, and the emitted rows are unioned at the
  round barrier.

**Why any partition of Δ is correct.** Under the textbook discipline
only the Δ-pinned step of a kernel enumerates the delta; snapshot and
full positions are probed, never enumerated.  Partitioning the Δ rows
across workers therefore partitions the *derivations*: every body
instantiation touches exactly one Δ row at the pinned position, so it
is produced by exactly one worker.  The hash key only balances the
partition -- it can never change the result.  Rounds are the sync
point: after the barrier merge the master state is identical to the
serial engine's, which makes ``parallel == serial`` differentially
checkable round by round, keeps derived facts/firings/duplicates-
avoided counters exact, and lets durable checkpoints (which fire only
at barriers, through the same ``governor.checkpoint`` site as the
serial engine) resume independently of the worker count.
``subgoal_attempts`` and ``elapsed_s`` are execution-shaped (per-worker
suffix memos, wall clock) and may differ across worker counts.

**Budget discipline.**  The master's
:class:`~repro.resilience.ResourceGovernor` stays the single budget:
fact / round / memory caps are enforced at each barrier (worker
database footprints are aggregated into the memory estimate), while
the wall-clock deadline is *also* shipped to workers as the remaining
budget so a runaway join trips inside the round.  A worker trip
surfaces as the same ``PARTIAL`` degradation the serial engine
produces, with the interrupted round's delta discarded -- soundness by
monotonicity is unchanged.

**Fork-safety.**  Workers are forked (or spawned, with a
:class:`~repro.data.columnar.SymbolTable` snapshot shipped and
re-interned in id order) only *after* the master pre-interns every
ground term of the program, so kernel compilation in a worker can
never allocate a dense id the master does not know.  While a pool is
live, :func:`repro.data.columnar.reset_symbol_table` refuses to run.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from typing import Any, Iterable, Mapping, Sequence

from ..data.columnar import note_pool_started, note_pool_stopped, symbol_table
from ..data.database import Database
from ..errors import ReproError, ResourceLimitExceeded, UnsafeRuleError, WorkerCrashError
from ..lang.atoms import Atom
from ..lang.programs import Program
from ..lang.serialize import program_from_dict, program_to_dict
from ..lang.terms import Variable
from ..obs.metrics import metrics_registry
from ..obs.tracer import trace
from ..resilience.governor import (
    DegradationReport,
    EvaluationStatus,
    ResourceGovernor,
    approximate_database_bytes,
)
from .compile import SRC_DELTA, KernelCache, cardinality_hint_provider
from .fixpoint import EvaluationResult, get_engine
from .joins import delta_variant_positions, fire_rule
from .seminaive import _fire_rule_compiled, seminaive_fixpoint
from .stats import EvaluationStats
from .stratified import stratify

#: Environment override for the multiprocessing start method ("fork" or
#: "spawn"); the default prefers fork where the platform offers it.
_START_ENV = "REPRO_PARALLEL_START"

#: Test seam: a callable ``hook(pool, round_index)`` invoked at the top
#: of every sharded round, *after* the barrier checkpoint is durable and
#: *before* work is dispatched.  The chaos suite uses it to SIGKILL a
#: worker mid-round and assert the session retries from the checkpoint.
_BARRIER_CHAOS_HOOK = None


def set_barrier_chaos_hook(hook) -> None:
    """Install (or clear, with ``None``) the barrier chaos hook."""
    global _BARRIER_CHAOS_HOOK
    _BARRIER_CHAOS_HOOK = hook


# ---------------------------------------------------------------------------
# Row transport: databases <-> plain {predicate: rows} payloads
# ---------------------------------------------------------------------------
def _relation_rows(db: Database, predicate: str):
    """The raw stored row set of one predicate (both backends)."""
    relation = db._relations.get(predicate)
    if relation is None:
        return ()
    rows = getattr(relation, "rows", None)
    return rows if rows is not None else relation


def _export_rows(db: Database) -> dict[str, list[tuple]]:
    """All facts as ``{predicate: [raw rows]}`` for pipe transport.

    Rows stay in storage representation (int tuples on columnar, Term
    tuples on the row backend); both pickle cheaply and re-import
    through ``_add_row`` without re-encoding.
    """
    return {
        pred: list(_relation_rows(db, pred))
        for pred in db._relations
        if _relation_rows(db, pred)
    }


def _import_rows(backend: str, facts: Mapping[str, Iterable[tuple]]) -> Database:
    db = Database(backend=backend)
    for pred, rows in facts.items():
        for row in rows:
            db._add_row(pred, tuple(row))
    return db


def _import_into(db: Database, facts: Mapping[str, Iterable[tuple]]) -> Database:
    new = db.empty_like()
    for pred, rows in facts.items():
        for row in rows:
            new._add_row(pred, tuple(row))
    return new


def _preintern_program(program: Program, db: Database) -> None:
    """Intern every ground term of *program* into the master table.

    Kernel compilation interns rule constants (``db.store_term``); by
    interning them all here, before the pool forks, worker- and
    master-side compilations agree on every dense id and int rows can
    cross the pipe without a remap.  Deterministic rule order makes the
    allocation order deterministic too.  No-op on the row backend.
    """
    if db.backend != "columnar":
        return
    store = db.store_term
    for rule in program.rules:
        for term in rule.head.args:
            if not isinstance(term, Variable):
                store(term)
        for literal in rule.body:
            for term in literal.atom.args:
                if not isinstance(term, Variable):
                    store(term)


# ---------------------------------------------------------------------------
# Delta shards
# ---------------------------------------------------------------------------
class DeltaShard:
    """A read-only hash shard of a round's delta.

    Wraps the full delta database plus the subset of rows this worker
    enumerates.  ``count``/``candidates`` serve only the shard (the
    Δ-pinned kernel step enumerates just these rows), while
    ``contains_tuple`` delegates to the *full* delta -- the
    duplicates-avoided counter asks "was this row in Δ at an enumerated
    full-side position?", a question about the whole round's delta, and
    delegation keeps the summed counter exactly equal to the serial
    engine's.
    """

    __slots__ = ("_delta", "_rows")

    def __init__(self, delta: Database, rows: Mapping[str, set]):
        self._delta = delta
        self._rows = {pred: selected for pred, selected in rows.items() if selected}

    @property
    def backend(self) -> str:
        return self._delta.backend

    def __bool__(self) -> bool:
        return any(self._rows.values())

    def count(self, predicate: str) -> int:
        rows = self._rows.get(predicate)
        return len(rows) if rows is not None else 0

    def contains_tuple(self, predicate: str, row: tuple) -> bool:
        return self._delta.contains_tuple(predicate, row)

    def candidates(self, predicate: str, bound: Mapping[int, object]) -> Iterable[tuple]:
        rows = self._rows.get(predicate)
        if not rows:
            return ()
        if not bound:
            return rows
        return [
            row
            for row in rows
            if all(row[pos] == value for pos, value in bound.items())
        ]

    def approximate_bytes(self) -> int:
        """Per-row bookkeeping only.

        The shard shares the parent delta's column logs; counting them
        here would double-bill every shard for the same arrays and
        inflate the cross-worker memory aggregate by ``workers x``.
        """
        return sum(len(rows) for rows in self._rows.values()) * 24


class ShardRouter:
    """Chooses the hash position per delta predicate and partitions rows.

    The key is read off the compiled kernels: for the first variant that
    pins a predicate's literal on Δ, take the first delta-step bind
    whose slot a later join step reads -- that is the slot array's join
    key.  Predicates never joined onward hash on position 0.  The choice
    only affects balance, never the result (see the module docstring).
    """

    def __init__(self, program: Program, db: Database, rule_indices: Sequence[int]):
        self._key_position: dict[str, int] = {}
        kernels = KernelCache(
            program.rules, db, hint_provider=cardinality_hint_provider(program, db)
        )
        for rule_index in rule_indices:
            rule = program.rules[rule_index]
            if rule.is_fact:
                continue
            for position in delta_variant_positions(rule.head, rule.body):
                predicate = rule.body[position].predicate
                if predicate in self._key_position:
                    continue
                kernel = kernels.kernel(rule_index, position)
                delta_step = next(
                    (s for s in kernel.steps if s.source == SRC_DELTA), None
                )
                if delta_step is None:
                    continue
                later_reads: set[int] = set()
                seen_delta = False
                for step in kernel.steps:
                    if step is delta_step:
                        seen_delta = True
                        continue
                    if not seen_delta:
                        continue
                    for _pos, slot in step.slot_bound:
                        later_reads.add(slot)
                    for _pos, slot in step.self_checks:
                        later_reads.add(slot)
                    for _pos, slot in step.neg_slots:
                        later_reads.add(slot)
                key = 0
                for pos, slot in delta_step.binds:
                    if slot in later_reads:
                        key = pos
                        break
                self._key_position[predicate] = key

    def key_position(self, predicate: str) -> int:
        return self._key_position.get(predicate, 0)

    def partition(
        self, delta_rows: Mapping[str, list[tuple]], shards: int
    ) -> list[dict[str, list[int]]]:
        """Row indices per shard; every row lands in exactly one shard."""
        out: list[dict[str, list[int]]] = [{} for _ in range(shards)]
        for pred, rows in delta_rows.items():
            key = self.key_position(pred)
            buckets = [out[s].setdefault(pred, []) for s in range(shards)]
            for index, row in enumerate(rows):
                value = row[key] if key < len(row) else 0
                shard = (value if type(value) is int else hash(value)) % shards
                buckets[shard].append(index)
        return out


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------
class _WorkerState:
    """Per-process evaluation state living inside a worker."""

    def __init__(self, payload: dict[str, Any]):
        symbols = payload.get("symbols")
        if symbols:
            # Spawn start: replay the master's interning order so every
            # dense id means the same term on both sides of the pipe.
            symbol_table().preload(symbols)
        self.program = program_from_dict(payload["program"])
        self.backend = payload["backend"]
        self.variants = [
            () if rule.is_fact else delta_variant_positions(rule.head, rule.body)
            for rule in self.program.rules
        ]
        self.full: Database | None = None
        self.snapshot: Database | None = None
        self.kernels: KernelCache | None = None
        self.rule_indices: tuple[int, ...] = ()

    def begin(self, snapshot_rows, rule_indices) -> None:
        """Reset for one sharded fixpoint: state = pre-round snapshot."""
        self.snapshot = _import_rows(self.backend, snapshot_rows)
        self.full = self.snapshot.copy()
        self.kernels = KernelCache(
            self.program.rules,
            self.full,
            hint_provider=cardinality_hint_provider(self.program, self.full),
        )
        self.rule_indices = tuple(rule_indices)

    def round(self, round_index, delta_rows, shard_spec, deadline_s) -> dict[str, Any]:
        """One sharded semi-naive round; returns new rows + stat deltas."""
        started = time.perf_counter()
        delta = _import_into(self.full, delta_rows)
        # full := snapshot ⊎ Δ = F_{k-1}; the serial loop's invariant.
        self.full.update(delta)
        shard = DeltaShard(
            delta,
            {
                pred: {tuple(delta_rows[pred][i]) for i in indices}
                for pred, indices in shard_spec.items()
            },
        )
        governor = None
        if deadline_s is not None:
            governor = ResourceGovernor(deadline_s=deadline_s)
            governor.note(engine="seminaive", round=round_index)
        stats = EvaluationStats()
        derived_rows: dict[str, set] = {}
        report = None
        try:
            for rule_index in self.rule_indices:
                rule = self.program.rules[rule_index]
                if rule.is_fact:
                    continue
                if governor is not None:
                    governor.note(rule_index=rule_index)
                    governor.tick()
                derived = _fire_rule_compiled(
                    rule,
                    self.kernels,
                    rule_index,
                    self.full,
                    shard,
                    self.snapshot,
                    stats,
                    governor,
                    self.variants[rule_index],
                )
                for atom in derived:
                    if atom not in self.full:
                        derived_rows.setdefault(atom.predicate, set()).add(atom.args)
        except ResourceLimitExceeded as error:
            report = error.report.to_dict()
        # Advance the snapshot to F_{k-1} for the next round.
        self.snapshot.update(delta)
        return {
            "derived": derived_rows,
            "stats": {
                "rule_firings": stats.rule_firings,
                "subgoal_attempts": stats.subgoal_attempts,
                "duplicates_avoided": stats.duplicates_avoided,
            },
            "elapsed_s": time.perf_counter() - started,
            "bytes": approximate_database_bytes(self.full),
            "report": report,
        }

    def scc(self, rule_indices, facts, limits) -> dict[str, Any]:
        """Evaluate one SCC of a wave to fixpoint on shipped facts."""
        started = time.perf_counter()
        current = _import_rows(self.backend, facts)
        shipped = {pred: set(map(tuple, rows)) for pred, rows in facts.items()}
        rules = [self.program.rules[i] for i in rule_indices]
        positive = [r for r in rules if r.is_positive]
        negated = [r for r in rules if not r.is_positive]
        governor = None
        if any(limits.get(k) is not None for k in ("deadline_s", "max_facts", "max_rounds")):
            governor = ResourceGovernor(
                deadline_s=limits.get("deadline_s"),
                max_facts=limits.get("max_facts"),
                max_rounds=limits.get("max_rounds"),
            )
            governor.restore(
                facts=limits.get("facts_seen", 0), rounds=limits.get("rounds_seen", 0)
            )
        stats = EvaluationStats()
        report = None
        try:
            changed = True
            while changed and report is None:
                changed = False
                if positive:
                    result = seminaive_fixpoint(Program(positive), current, governor)
                    stats.merge(result.stats)
                    if result.is_partial:
                        current = result.database
                        report = result.degradation.to_dict()
                        break
                    if len(result.database) > len(current):
                        changed = True
                    current = result.database
                for rule in negated:
                    if governor is not None:
                        governor.tick()
                    derived = fire_rule(
                        current, rule.head, rule.body, stats=stats, governor=governor
                    )
                    for atom in derived:
                        if current.add(atom):
                            stats.facts_derived += 1
                            if governor is not None:
                                governor.add_facts(1)
                            changed = True
        except ResourceLimitExceeded as error:
            report = error.report.to_dict()
        derived_out: dict[str, list[tuple]] = {}
        for pred in current._relations:
            known = shipped.get(pred, ())
            fresh = [row for row in _relation_rows(current, pred) if row not in known]
            if fresh:
                derived_out[pred] = fresh
        return {
            "derived": derived_out,
            "stats": stats.to_dict(),
            "elapsed_s": time.perf_counter() - started,
            "report": report,
        }


def _worker_main(conn, worker_id: int) -> None:
    """Worker process entry point: a strict request/reply message loop."""
    state: _WorkerState | None = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        kind = message[0]
        if kind == "stop":
            break
        try:
            if kind == "init":
                state = _WorkerState(message[1])
                conn.send(("ready", os.getpid()))
            elif kind == "begin":
                state.begin(message[1], message[2])
                conn.send(("ok", None))
            elif kind == "round":
                conn.send(("round", state.round(*message[1:])))
            elif kind == "scc":
                conn.send(("scc", state.scc(*message[1:])))
            else:
                conn.send(("error", f"unknown message kind {kind!r}"))
        except BaseException:
            try:
                conn.send(("error", traceback.format_exc()))
            except Exception:
                break
    try:
        conn.close()
    except Exception:
        pass


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------
def _default_start_method() -> str:
    override = os.environ.get(_START_ENV)
    if override:
        return override
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


class WorkerPool:
    """A fixed set of evaluation workers joined by one pipe each.

    The protocol is strict request/reply per worker, so sends and
    receives can never deadlock.  A worker death (crash, OOM-kill,
    chaos SIGKILL) surfaces as :class:`~repro.errors.WorkerCrashError`
    -- a retryable :class:`~repro.errors.TransientStorageError`,
    because round barriers are checkpoint sites and a session retry
    resumes from the last barrier.
    """

    def __init__(
        self,
        workers: int,
        program: Program,
        backend: str,
        start_method: str | None = None,
    ):
        if workers < 1:
            raise ValueError(f"worker pool needs at least 1 worker, got {workers}")
        method = start_method or _default_start_method()
        context = multiprocessing.get_context(method)
        payload: dict[str, Any] = {
            "program": program_to_dict(program),
            "backend": backend,
        }
        if method != "fork" and backend == "columnar":
            # Fork inherits the table; spawn must replay it in id order.
            payload["symbols"] = symbol_table().snapshot()
        self.start_method = method
        self._conns: list[Any] = []
        self._procs: list[Any] = []
        self._closed = False
        note_pool_started()
        try:
            for worker_id in range(workers):
                parent, child = context.Pipe()
                proc = context.Process(
                    target=_worker_main,
                    args=(child, worker_id),
                    daemon=True,
                    name=f"repro-worker-{worker_id}",
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
            for worker_id in range(workers):
                self.send(worker_id, ("init", payload))
            for worker_id in range(workers):
                self.recv(worker_id)
            metrics_registry().increment("parallel.pool_starts")
        except BaseException:
            self.close()
            raise

    @property
    def size(self) -> int:
        return len(self._procs)

    @property
    def pids(self) -> tuple[int, ...]:
        return tuple(proc.pid for proc in self._procs)

    def send(self, worker: int, message: tuple) -> None:
        try:
            self._conns[worker].send(message)
        except (BrokenPipeError, OSError) as error:
            raise WorkerCrashError(
                f"parallel worker {worker} pipe closed mid-send: {error}"
            ) from error

    def broadcast(self, message: tuple) -> None:
        for worker in range(self.size):
            self.send(worker, message)

    def recv(self, worker: int) -> tuple:
        conn = self._conns[worker]
        proc = self._procs[worker]
        while True:
            if conn.poll(0.05):
                try:
                    message = conn.recv()
                except (EOFError, OSError) as error:
                    raise WorkerCrashError(
                        f"parallel worker {worker} (pid {proc.pid}) died mid-round"
                    ) from error
                if message[0] == "error":
                    raise ReproError(
                        f"parallel worker {worker} failed:\n{message[1]}"
                    )
                return message
            if not proc.is_alive() and not conn.poll(0):
                raise WorkerCrashError(
                    f"parallel worker {worker} (pid {proc.pid}) died mid-round "
                    f"(exit code {proc.exitcode})"
                )

    def gather(self) -> list[tuple]:
        return [self.recv(worker) for worker in range(self.size)]

    def begin(self, snapshot_rows, rule_indices) -> None:
        self.broadcast(("begin", snapshot_rows, tuple(rule_indices)))
        self.gather()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=1.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        note_pool_stopped()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Sharded semi-naive fixpoint (master side)
# ---------------------------------------------------------------------------
def _deadline_remaining(governor: ResourceGovernor | None) -> float | None:
    if governor is None or governor.deadline_s is None:
        return None
    remaining = governor.deadline_s - governor.elapsed()
    # A spent budget still ships a hair of deadline so the worker trips
    # (and reports) rather than racing the master's own check.
    return max(remaining, 0.001)


def _master_report(
    worker_report: dict[str, Any],
    governor: ResourceGovernor | None,
    engine: str,
    stratum: int | None,
    round_index: int,
) -> DegradationReport:
    """A worker's trip re-anchored in the master's coordinates."""
    registry = metrics_registry()
    registry.increment("governor.trips")
    registry.increment(f"governor.trips.{worker_report['limit']}")
    return DegradationReport(
        limit=worker_report["limit"],
        detail=worker_report["detail"],
        engine=engine,
        stratum=stratum,
        rule_index=worker_report.get("rule_index"),
        round=round_index,
        elapsed_s=governor.elapsed() if governor is not None else worker_report.get("elapsed_s", 0.0),
        facts_seen=governor.facts_seen if governor is not None else worker_report.get("facts_seen", 0),
    )


def _sharded_fixpoint(
    pool: WorkerPool,
    program: Program,
    rule_indices: Sequence[int],
    db: Database,
    governor: ResourceGovernor | None,
    stats: EvaluationStats,
    resume_state=None,
    engine: str = "seminaive",
    stratum: int | None = None,
) -> tuple[Database, DegradationReport | None]:
    """The serial semi-naive loop with rounds fanned out over *pool*.

    Mirrors :func:`~repro.engine.seminaive.seminaive_fixpoint` exactly
    at every barrier: same round-0 seeding (fact heads fire once on the
    master), same ``governor.checkpoint(full, round=..., delta=...)``
    site (so durable checkpoints land on identical states), same
    PARTIAL discipline (a tripped round's delta is discarded).  Returns
    the full database and the degradation report, if any.
    """
    rule_indices = tuple(rule_indices)
    full = db.copy()
    if governor is not None:
        governor.note(engine="seminaive")
    if resume_state is not None:
        delta = resume_state.delta.copy()
        snapshot = full.copy()
        snapshot.discard_all(delta.atoms())
        stats.iterations = resume_state.round - 1
    else:
        delta = db.copy()
        snapshot = full.empty_like()
        stats.iterations += 1
        for rule_index in rule_indices:
            rule = program.rules[rule_index]
            if rule.is_fact:
                if full.add(rule.head):
                    stats.facts_derived += 1
                    delta.add(rule.head)

    pool.begin(_export_rows(snapshot), rule_indices)
    router = ShardRouter(program, full, rule_indices)
    registry = metrics_registry()
    worker_bytes = 0
    try:
        while delta:
            stats.iterations += 1
            if governor is not None:
                governor.checkpoint(
                    full, round=stats.iterations, delta=delta, extra_bytes=worker_bytes
                )
            hook = _BARRIER_CHAOS_HOOK
            if hook is not None:
                hook(pool, stats.iterations)
            delta_rows = _export_rows(delta)
            shards = router.partition(delta_rows, pool.size)
            deadline_s = _deadline_remaining(governor)
            with trace(
                "parallel.round",
                index=stats.iterations,
                workers=pool.size,
                delta=len(delta),
            ) as span:
                for worker in range(pool.size):
                    pool.send(
                        worker,
                        ("round", stats.iterations, delta_rows, shards[worker], deadline_s),
                    )
                replies = [pool.recv(worker)[1] for worker in range(pool.size)]
                registry.increment(
                    "parallel.shards",
                    sum(1 for shard in shards if any(shard.values())),
                )
                registry.increment("parallel.worker_rounds", pool.size)
                worker_bytes = 0
                slowest = 0.0
                for reply in replies:
                    counters = reply["stats"]
                    stats.rule_firings += counters["rule_firings"]
                    stats.subgoal_attempts += counters["subgoal_attempts"]
                    stats.duplicates_avoided += counters["duplicates_avoided"]
                    worker_bytes += reply["bytes"]
                    slowest = max(slowest, reply["elapsed_s"])
                    registry.observe("parallel.worker_elapsed_s", reply["elapsed_s"])
                    if governor is not None:
                        governor.tick()
                if span:
                    span.add("worker_elapsed_s", slowest)
                    span.add("worker_bytes", worker_bytes)
            for reply in replies:
                if reply["report"] is not None:
                    # Same discipline as a serial mid-round trip: the
                    # round's derivations are discarded, F_{k-1} stands.
                    return full, _master_report(
                        reply["report"], governor, engine, stratum, stats.iterations
                    )
            new_delta = full.empty_like()
            for reply in replies:
                for pred, rows in reply["derived"].items():
                    for row in rows:
                        atom = Atom(pred, tuple(row))
                        if atom not in full and atom not in new_delta:
                            new_delta.add(atom)
            snapshot.update(delta)
            added = full.update(new_delta)
            stats.facts_derived += added
            if governor is not None:
                governor.add_facts(added)
            delta = new_delta
    except ResourceLimitExceeded as error:
        return full, error.report
    return full, None


def parallel_seminaive_fixpoint(
    program: Program,
    db: Database,
    governor: ResourceGovernor | None = None,
    workers: int = 2,
    resume_state=None,
) -> EvaluationResult:
    """Semi-naive evaluation with each round's delta sharded over *workers*.

    Same contract (and same result, firings, derived facts, rounds,
    duplicates-avoided counters) as
    :func:`~repro.engine.seminaive.seminaive_fixpoint`; the stats
    record ``engine="seminaive"`` so checkpoints written at the round
    barriers resume under any worker count.
    """
    if not program.is_positive:
        raise UnsafeRuleError(
            "semi-naive evaluation requires a positive program; "
            "use repro.engine.stratified for programs with negation"
        )
    if workers < 2:
        return seminaive_fixpoint(program, db, governor, resume_state=resume_state)
    stats = EvaluationStats(engine="seminaive")
    stats.start()
    _preintern_program(program, db)
    with trace("parallel.eval", engine="seminaive", workers=workers, rules=len(program.rules)) as root:
        root.watch(stats)
        pool = WorkerPool(workers, program, db.backend)
        try:
            full, degradation = _sharded_fixpoint(
                pool,
                program,
                range(len(program.rules)),
                db,
                governor,
                stats,
                resume_state=resume_state,
            )
        finally:
            pool.close()
        if root:
            root.add("index_probes", full.probe_count())
            root.add("full_scans", full.scan_count())
    stats.stop()
    status = EvaluationStatus.PARTIAL if degradation is not None else EvaluationStatus.COMPLETE
    return EvaluationResult(full, stats, status=status, degradation=degradation)


# ---------------------------------------------------------------------------
# SCC waves (inter-stratum parallelism)
# ---------------------------------------------------------------------------
def _dependence_sccs(program: Program) -> list[tuple[str, ...]]:
    """SCCs of the IDB dependence graph, in deterministic order."""
    idb = sorted(program.idb_predicates)
    edges: dict[str, set[str]] = {pred: set() for pred in idb}
    for rule in program.rules:
        head = rule.head.predicate
        for literal in rule.body:
            if literal.predicate in edges:
                edges[literal.predicate].add(head)
    # Iterative Tarjan over the deterministic node/edge order.
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: dict[str, bool] = {}
    stack: list[str] = []
    sccs: list[tuple[str, ...]] = []
    counter = [0]

    for start in idb:
        if start in index_of:
            continue
        work = [(start, iter(sorted(edges[start])))]
        index_of[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack[start] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(sorted(edges[succ]))))
                    advanced = True
                    break
                if on_stack.get(succ):
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                sccs.append(tuple(sorted(component)))
    return sccs


def scc_waves(program: Program) -> list[list[tuple[str, ...]]]:
    """SCCs grouped into longest-path waves over the condensation.

    SCCs in one wave have no dependence edge between them, so they can
    evaluate concurrently; every edge (positive or negative) crosses
    into a strictly later wave, so negated predicates are complete
    before they are read (the program must be stratifiable -- callers
    run :func:`~repro.engine.stratified.stratify` first).
    """
    sccs = _dependence_sccs(program)
    scc_of: dict[str, int] = {}
    for scc_index, component in enumerate(sccs):
        for pred in component:
            scc_of[pred] = scc_index
    preds_of: dict[int, set[int]] = {i: set() for i in range(len(sccs))}
    for rule in program.rules:
        head_scc = scc_of[rule.head.predicate]
        for literal in rule.body:
            body_scc = scc_of.get(literal.predicate)
            if body_scc is not None and body_scc != head_scc:
                preds_of[head_scc].add(body_scc)
    level: dict[int, int] = {}

    def resolve(scc_index: int) -> int:
        pending = [scc_index]
        while pending:
            node = pending[-1]
            if node in level:
                pending.pop()
                continue
            unresolved = [p for p in preds_of[node] if p not in level]
            if unresolved:
                pending.extend(unresolved)
                continue
            level[node] = 1 + max((level[p] for p in preds_of[node]), default=-1)
            pending.pop()
        return level[scc_index]

    depth = 0
    for scc_index in range(len(sccs)):
        depth = max(depth, resolve(scc_index))
    waves: list[list[tuple[str, ...]]] = [[] for _ in range(depth + 1)]
    for scc_index, component in enumerate(sccs):
        waves[level[scc_index]].append(component)
    for wave in waves:
        wave.sort()
    return waves


def _task_predicates(program: Program, rule_indices: Sequence[int]) -> set[str]:
    """Every predicate an SCC task reads or writes (for fact shipping)."""
    wanted: set[str] = set()
    for rule_index in rule_indices:
        rule = program.rules[rule_index]
        wanted.add(rule.head.predicate)
        for literal in rule.body:
            wanted.add(literal.predicate)
    return wanted


def _merge_scc_reply(
    reply: dict[str, Any],
    current: Database,
    stats: EvaluationStats,
    governor: ResourceGovernor | None,
) -> None:
    """Fold one SCC task's derived rows and counters into the master."""
    added = 0
    for pred, rows in reply["derived"].items():
        for row in rows:
            if current._add_row(pred, tuple(row)):
                added += 1
    worker = EvaluationStats()
    counters = reply["stats"]
    worker.iterations = counters["iterations"]
    worker.rule_firings = counters["rule_firings"]
    worker.subgoal_attempts = counters["subgoal_attempts"]
    worker.duplicates_avoided = counters["duplicates_avoided"]
    worker.elapsed = counters["elapsed_s"]
    stats.merge(worker)
    stats.facts_derived += added
    if governor is not None:
        governor.add_facts(added)
    metrics_registry().observe("parallel.worker_elapsed_s", reply["elapsed_s"])


def parallel_stratified(
    program: Program,
    db: Database,
    governor: ResourceGovernor | None = None,
    workers: int = 2,
) -> EvaluationResult:
    """The perfect model, with independent SCCs scheduled concurrently.

    Waves (see :func:`scc_waves`) replace the serial engine's strata:
    a wave holding several SCCs ships each as one task to the pool and
    merges the derived relations at the wave barrier; a wave holding a
    single SCC evaluates on the master, sharding its positive rules'
    delta over the pool.  Fact/memory caps are enforced on the master
    at the barriers; the deadline (and remaining fact/round budgets)
    ride along to the workers.
    """
    stratify(program)  # validates stratifiability; raises otherwise
    if workers < 2:
        return get_engine("stratified").run(program, db, governor=governor)
    stats = EvaluationStats(engine="stratified")
    stats.start()
    current = db.copy()
    status = EvaluationStatus.COMPLETE
    degradation = None
    _preintern_program(program, db)
    registry = metrics_registry()
    with trace("parallel.eval", engine="stratified", workers=workers, rules=len(program.rules)) as root:
        root.watch(stats)
        pool = WorkerPool(workers, program, db.backend)
        try:
            if governor is not None:
                governor.note(engine="stratified")
            waves = scc_waves(program)
            for wave_index, wave in enumerate(waves):
                if governor is not None:
                    governor.note(stratum=wave_index)
                    governor.checkpoint(current)
                tasks = [
                    [
                        i
                        for i, rule in enumerate(program.rules)
                        if rule.head.predicate in set(component)
                    ]
                    for component in wave
                ]
                tasks = [task for task in tasks if task]
                if not tasks:
                    continue
                if len(tasks) == 1:
                    current, degradation = _run_wave_on_master(
                        pool, program, tasks[0], current, governor, stats, wave_index
                    )
                else:
                    registry.increment("parallel.scc_tasks", len(tasks))
                    degradation = _run_wave_on_workers(
                        pool, program, tasks, current, governor, stats, wave_index
                    )
                if degradation is not None:
                    status = EvaluationStatus.PARTIAL
                    break
        except ResourceLimitExceeded as error:
            status = EvaluationStatus.PARTIAL
            degradation = error.report
        finally:
            pool.close()
    stats.stop()
    stats.elapsed = max(stats.elapsed, 0.0)
    return EvaluationResult(current, stats, status=status, degradation=degradation)


def _run_wave_on_master(
    pool: WorkerPool,
    program: Program,
    rule_indices: Sequence[int],
    current: Database,
    governor: ResourceGovernor | None,
    stats: EvaluationStats,
    wave_index: int,
) -> tuple[Database, DegradationReport | None]:
    """One single-SCC wave: serial stratum loop, sharded positive rules."""
    positive = [i for i in rule_indices if program.rules[i].is_positive]
    negated = [i for i in rule_indices if not program.rules[i].is_positive]
    changed = True
    while changed:
        changed = False
        if positive:
            before = len(current)
            sub_stats = EvaluationStats(engine="seminaive")
            sub_stats.start()
            result_db, report = _sharded_fixpoint(
                pool,
                program,
                positive,
                current,
                governor,
                sub_stats,
                engine="stratified",
                stratum=wave_index,
            )
            sub_stats.stop()
            stats.merge(sub_stats)
            current = result_db
            if report is not None:
                return current, report
            if len(current) > before:
                changed = True
        for rule_index in negated:
            rule = program.rules[rule_index]
            if governor is not None:
                governor.note(rule_index=rule_index)
                governor.tick()
            derived = fire_rule(
                current, rule.head, rule.body, stats=stats, governor=governor
            )
            for atom in derived:
                if current.add(atom):
                    stats.facts_derived += 1
                    if governor is not None:
                        governor.add_facts(1)
                    changed = True
    return current, None


def _run_wave_on_workers(
    pool: WorkerPool,
    program: Program,
    tasks: Sequence[Sequence[int]],
    current: Database,
    governor: ResourceGovernor | None,
    stats: EvaluationStats,
    wave_index: int,
) -> DegradationReport | None:
    """One multi-SCC wave: each SCC is a task; merge at the barrier.

    Tasks in a wave are mutually independent (no dependence edge), so
    their inputs can all be snapshotted before any merge and their
    outputs merged in deterministic task order afterwards.
    """
    limits = {
        "deadline_s": _deadline_remaining(governor),
        "max_facts": governor.max_facts if governor is not None else None,
        "max_rounds": governor.max_rounds if governor is not None else None,
        "facts_seen": governor.facts_seen if governor is not None else 0,
        "rounds_seen": governor.rounds_seen if governor is not None else 0,
    }
    replies: list[dict[str, Any] | None] = [None] * len(tasks)
    with trace(
        "parallel.wave", index=wave_index, tasks=len(tasks), workers=pool.size
    ) as span:
        for chunk_start in range(0, len(tasks), pool.size):
            chunk = tasks[chunk_start : chunk_start + pool.size]
            for offset, task in enumerate(chunk):
                facts = _export_rows(
                    current.restrict_to(_task_predicates(program, task))
                )
                pool.send(offset, ("scc", tuple(task), facts, limits))
            for offset in range(len(chunk)):
                replies[chunk_start + offset] = pool.recv(offset)[1]
        if span:
            span.add("tasks", len(tasks))
    degradation = None
    for task_index, reply in enumerate(replies):
        _merge_scc_reply(reply, current, stats, governor)
        if degradation is None and reply["report"] is not None:
            degradation = _master_report(
                reply["report"], governor, "stratified", wave_index, reply["stats"]["iterations"]
            )
    return degradation


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def parallel_evaluate(
    program: Program,
    db: Database,
    engine: str = "seminaive",
    governor: ResourceGovernor | None = None,
    workers: int = 2,
    resume_state=None,
) -> EvaluationResult:
    """Evaluate ``P(db)`` on a worker pool; falls back to serial.

    ``seminaive`` runs the sharded fixpoint, ``stratified`` the SCC-wave
    scheduler.  Other fixpoint engines have no parallel variant; they
    run serially and count a ``parallel.serial_fallback`` metric so the
    fallback is observable rather than silent.
    """
    spec = get_engine(engine)
    if spec.kind != "fixpoint":
        raise ValueError(
            f"engine {engine!r} is a {spec.kind} engine; parallel_evaluate() "
            "accepts fixpoint engines only"
        )
    if workers < 1:
        raise ValueError(f"--workers must be >= 1, got {workers}")
    if workers == 1:
        if resume_state is not None and engine == "seminaive":
            return seminaive_fixpoint(program, db, governor, resume_state=resume_state)
        return spec.run(program, db, governor=governor)
    if engine == "seminaive":
        return parallel_seminaive_fixpoint(
            program, db, governor=governor, workers=workers, resume_state=resume_state
        )
    if engine == "stratified":
        return parallel_stratified(program, db, governor=governor, workers=workers)
    metrics_registry().increment("parallel.serial_fallback")
    return spec.run(program, db, governor=governor)
