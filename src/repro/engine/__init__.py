"""Bottom-up evaluation engines: naive, semi-naive, magic sets, stratified."""

from __future__ import annotations

from .compile import JoinKernel, KernelCache, compile_kernel
from .costs import (
    DEFAULT_SELECTIVITY,
    JoinEstimate,
    PredicateStatistics,
    collect_statistics,
    estimate_guard_benefit,
    estimate_rule,
    rank_guards,
)
from .fixpoint import (
    EngineName,
    EngineSpec,
    EvaluationOutcome,
    EvaluationResult,
    apply_once,
    engine_names,
    evaluate,
    get_engine,
    register_engine,
)
from .incremental import MaintenanceStats, MaterializedView
from .joins import fire_rule, match_body, plan_order
from .magic import Adornment, MagicRewriting, answer_query, magic_transform
from .naive import naive_fixpoint
from .provenance import (
    Justification,
    ProofNode,
    ProvenanceResult,
    derivation_tree,
    evaluate_with_provenance,
    explain,
)
from .seminaive import seminaive_fixpoint
from .stats import EvaluationStats
from .stratified import Stratification, evaluate_stratified, stratify
from .supplementary import answer_query_supplementary, supplementary_magic_transform
from .topdown import Call, TabledResult, tabled_answer_query, tabled_query

__all__ = [
    "Adornment",
    "Call",
    "DEFAULT_SELECTIVITY",
    "EngineName",
    "EngineSpec",
    "EvaluationOutcome",
    "EvaluationResult",
    "EvaluationStats",
    "JoinEstimate",
    "JoinKernel",
    "Justification",
    "KernelCache",
    "MaintenanceStats",
    "MagicRewriting",
    "MaterializedView",
    "PredicateStatistics",
    "ProofNode",
    "ProvenanceResult",
    "Stratification",
    "TabledResult",
    "derivation_tree",
    "evaluate_with_provenance",
    "explain",
    "answer_query",
    "answer_query_supplementary",
    "apply_once",
    "collect_statistics",
    "compile_kernel",
    "engine_names",
    "evaluate",
    "get_engine",
    "register_engine",
    "estimate_guard_benefit",
    "estimate_rule",
    "evaluate_stratified",
    "fire_rule",
    "magic_transform",
    "match_body",
    "naive_fixpoint",
    "plan_order",
    "rank_guards",
    "seminaive_fixpoint",
    "stratify",
    "supplementary_magic_transform",
    "tabled_answer_query",
    "tabled_query",
]
