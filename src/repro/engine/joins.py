"""Backtracking index-nested-loop joins over rule bodies.

Matching a rule body against a database is a conjunctive query: each
body literal is a subgoal, and a solution is a substitution making every
positive subgoal a stored fact and every negated subgoal absent.

The join order is chosen greedily (most-bound-first): simulate the
binding of variables as literals are picked, always choosing a positive
literal with the largest number of bound argument positions next
(breaking ties toward smaller relations), and scheduling negated
literals as soon as they are fully bound.  Safety validation guarantees
an order in which every negated literal eventually becomes fully bound.

The inner loop works on plain ``dict`` bindings (not the immutable
:class:`~repro.lang.substitution.Substitution`) for speed; solutions are
yielded as dicts that callers must not mutate across iterations --
each yielded dict is a fresh copy.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from ..data.database import Database
from ..lang.atoms import Atom, Literal
from ..lang.terms import Term, Variable
from .stats import EvaluationStats


def plan_order(
    literals: Sequence[Literal],
    db: Database,
    initially_bound: frozenset[Variable] = frozenset(),
    prefer_vars: frozenset[Variable] = frozenset(),
    first: int | None = None,
    hints: Mapping[str, int] | None = None,
) -> list[int]:
    """Choose an evaluation order over body literal indexes.

    Greedy most-bound-first over positive literals; each negated literal
    is placed at the earliest point where all of its variables are
    bound.  When *prefer_vars* is given (typically the head variables),
    literals binding them are favoured so that the witness cutoff of
    :func:`match_body` engages as early as possible.  When *first* is
    given, that (positive) literal leads the order unconditionally --
    semi-naive evaluation pins its delta subgoal there, since the delta
    relation is the most selective starting point.

    *hints* maps predicates to **static** size estimates (from the
    cardinality interval analysis,
    :func:`repro.analysis.absint.cardinality.cardinality_hints`).  A
    hint substitutes for ``db.count`` in the size tie-break only when
    the database holds no facts of the predicate -- the situation of a
    kernel compiled before any IDB fact exists, where every IDB
    relation otherwise ties at size 0 and the tie-break degenerates to
    body order.  Real statistics always win over estimates.
    """
    def size(predicate: str) -> int:
        count = db.count(predicate)
        if count == 0 and hints:
            return hints.get(predicate, 0)
        return count

    remaining = set(range(len(literals)))
    bound: set[Variable] = set(initially_bound)
    order: list[int] = []
    if first is not None:
        order.append(first)
        remaining.discard(first)
        bound.update(literals[first].atom.variables())

    def emit_ready_negatives() -> None:
        for i in sorted(remaining):
            literal = literals[i]
            if not literal.positive and literal.atom.variable_set() <= bound:
                order.append(i)
                remaining.discard(i)

    emit_ready_negatives()
    while remaining:
        best = None
        best_key = None
        for i in remaining:
            literal = literals[i]
            if not literal.positive:
                continue
            atom = literal.atom
            bound_positions = sum(
                1 for t in atom.args if not isinstance(t, Variable) or t in bound
            )
            new_preferred = sum(
                1
                for v in atom.variable_set()
                if v in prefer_vars and v not in bound
            )
            # Prefer more bound positions, then binding head variables,
            # then smaller relations, then stable original order.
            key = (-bound_positions, -new_preferred, size(atom.predicate), i)
            if best_key is None or key < best_key:
                best, best_key = i, key
        if best is None:
            # Only negated literals remain but none is fully bound; the
            # rule failed safety validation upstream, so this is a bug.
            raise AssertionError("unbound negated literal survived safety checking")
        order.append(best)
        remaining.discard(best)
        bound.update(literals[best].atom.variables())
        emit_ready_negatives()
    return order


def delta_variant_positions(head: Atom, literals: Sequence[Literal]) -> tuple[int, ...]:
    """Body positions that need their own semi-naive delta variant.

    Every positive literal gets a variant, except one identical to an
    *earlier* positive literal up to renaming variables that occur
    nowhere else in the rule (the paper's redundant-atom pattern,
    ``G(x,s1), G(x,s2)``): swapping the two literals' private variables
    is a rule automorphism fixing the head, so a body instantiation
    with Δ pinned at the later literal maps to one with Δ pinned at the
    earlier literal deriving the same head.  Dropping the later variant
    leaves the per-round derived-head set unchanged (under both the
    read-everything and the textbook snapshot disciplines) while
    skipping its join entirely.
    """
    counts: dict[Variable, int] = {}
    for atom in (head, *(literal.atom for literal in literals)):
        for term in atom.args:
            if isinstance(term, Variable):
                counts[term] = counts.get(term, 0) + 1
    seen: set[tuple] = set()
    positions: list[int] = []
    for index, literal in enumerate(literals):
        if not literal.positive:
            continue
        atom = literal.atom
        signature = (
            atom.predicate,
            tuple(
                None if isinstance(term, Variable) and counts[term] == 1 else term
                for term in atom.args
            ),
        )
        if signature in seen:
            continue
        seen.add(signature)
        positions.append(index)
    return tuple(positions)


def _bound_positions(atom: Atom, bindings: Mapping[Variable, Term]) -> dict[int, Term]:
    """Map argument positions that are ground under *bindings* to values."""
    out: dict[int, Term] = {}
    for pos, term in enumerate(atom.args):
        if isinstance(term, Variable):
            value = bindings.get(term)
            if value is not None:
                out[pos] = value
        else:
            out[pos] = term
    return out


def match_body(
    db: Database,
    literals: Sequence[Literal],
    stats: EvaluationStats | None = None,
    initial: Mapping[Variable, Term] | None = None,
    order: Sequence[int] | None = None,
    source_for: Mapping[int, Database] | None = None,
    witness_after: frozenset[Variable] | None = None,
) -> Iterator[dict[Variable, Term]]:
    """Yield all substitutions making the body true in *db*.

    Args:
        db: database answering positive subgoals (and all negated ones).
        literals: the rule body.
        stats: optional join-work counters.
        initial: variable pre-bindings (used by magic/derived contexts).
        order: explicit evaluation order (defaults to :func:`plan_order`).
        source_for: optional override mapping a body-literal *index* to
            the database it must match against -- semi-naive evaluation
            uses this to force one subgoal onto the delta relation.
            Negated literals always consult *db*.
        witness_after: *existential cutoff* -- once every variable in
            this set is bound, the remaining subgoals are checked for
            satisfiability only and a single witness is produced instead
            of enumerating all completions.  Rule firing passes the head
            variables here: distinct bindings of head-irrelevant body
            variables cannot change the derived fact, and enumerating
            them is the classic exponential trap (e.g. the body
            ``G(x,s1), G(x,s2), G(x,s3)`` has ``|G(x,·)|³`` witnesses).
            Solutions may still repeat on the cutoff variables; callers
            deduplicate derived heads as usual.
    """
    if order is None:
        initially_bound = frozenset(initial) if initial else frozenset()
        # A single delta-pinned subgoal (semi-naive) leads the order:
        # the delta is the most selective relation in the join.
        first = None
        if source_for is not None and len(source_for) == 1:
            (candidate_first,) = source_for
            if literals[candidate_first].positive:
                first = candidate_first
        order = plan_order(
            literals,
            db,
            initially_bound,
            prefer_vars=witness_after or frozenset(),
            first=first,
        )
    bindings: dict[Variable, Term] = dict(initial) if initial else {}

    def bind_row(atom: Atom, row: tuple, guaranteed: Mapping[int, Term]) -> list[Variable] | None:
        """Extend *bindings* to match *atom* against *row*.

        *guaranteed* is the bound-position map the row was probed with:
        ``candidates`` guarantees those positions match, so they are
        skipped here.  (Besides saving re-checks, this keeps the
        reference path backend-agnostic -- on the columnar backend the
        guaranteed positions hold Terms while rows hold interned ints.)
        Every remaining position is an unbound-or-repeated variable;
        values bound from rows stay in the backend's representation.

        Returns the newly bound variables (to undo later), or ``None``
        on mismatch (nothing left bound).
        """
        added: list[Variable] = []
        for pos, term in enumerate(atom.args):
            if pos in guaranteed:
                continue
            value = bindings.get(term)
            if value is None:
                bindings[term] = row[pos]
                added.append(term)
            elif value != row[pos]:
                for var in added:
                    del bindings[var]
                return None
        return added

    def rows_for(depth: int):
        index = order[depth]
        literal = literals[index]
        source = db
        if literal.positive and source_for is not None:
            source = source_for.get(index, db)
        return literal, source

    def satisfiable(depth: int) -> bool:
        """Existence check: does any completion of the suffix match?"""
        if depth == len(order):
            return True
        literal, source = rows_for(depth)
        atom = literal.atom
        if stats is not None:
            stats.subgoal_attempts += 1
        if not literal.positive:
            ground = atom.substitute(bindings)
            return ground not in db and satisfiable(depth + 1)
        bound = _bound_positions(atom, bindings)
        for row in source.candidates(atom.predicate, bound):
            added = bind_row(atom, row, bound)
            if added is None:
                continue
            if satisfiable(depth + 1):
                for var in added:
                    del bindings[var]
                return True
            for var in added:
                del bindings[var]
        return False

    def search(depth: int) -> Iterator[dict[Variable, Term]]:
        if depth == len(order):
            yield dict(bindings)
            return
        if witness_after is not None and all(v in bindings for v in witness_after):
            if satisfiable(depth):
                yield dict(bindings)
            return
        literal, source = rows_for(depth)
        atom = literal.atom
        if stats is not None:
            stats.subgoal_attempts += 1
        if not literal.positive:
            ground = atom.substitute(bindings)
            if ground not in db:
                yield from search(depth + 1)
            return
        bound = _bound_positions(atom, bindings)
        for row in source.candidates(atom.predicate, bound):
            added = bind_row(atom, row, bound)
            if added is None:
                continue
            yield from search(depth + 1)
            for var in added:
                del bindings[var]

    yield from search(0)


def body_witness(
    db: Database,
    literals: Sequence[Literal],
    bindings: Mapping[Variable, Term],
    order: Sequence[int],
    stats: EvaluationStats | None = None,
) -> bool:
    """Does *some* completion of *bindings* satisfy the body in *db*?

    The boolean twin of :func:`match_body` with the witness cutoff
    engaged from depth 0: callers pass bindings that already determine
    everything they care about (e.g. every head variable, as in DRed
    rederivation) and only need to know whether a witness exists.
    Skipping the generator machinery and the per-solution dict copies
    makes this the cheapest probe the join layer offers.  *bindings* is
    left unmodified; *order* is a precomputed :func:`plan_order` result.
    """
    scratch: dict[Variable, Term] = dict(bindings)

    def satisfiable(depth: int) -> bool:
        if depth == len(order):
            return True
        literal = literals[order[depth]]
        atom = literal.atom
        if stats is not None:
            stats.subgoal_attempts += 1
        if not literal.positive:
            return atom.substitute(scratch) not in db and satisfiable(depth + 1)
        bound = _bound_positions(atom, scratch)
        args = atom.args
        for row in db.candidates(atom.predicate, bound):
            added = None
            matched = True
            for pos, term in enumerate(args):
                if pos in bound:
                    continue
                value = scratch.get(term)
                if value is None:
                    scratch[term] = row[pos]
                    if added is None:
                        added = [term]
                    else:
                        added.append(term)
                elif value != row[pos]:
                    matched = False
                    break
            if matched and satisfiable(depth + 1):
                return True
            if added:
                for var in added:
                    del scratch[var]
        return False

    return satisfiable(0)


def fire_rule(
    db: Database,
    head: Atom,
    literals: Sequence[Literal],
    stats: EvaluationStats | None = None,
    source_for: Mapping[int, Database] | None = None,
    order: Sequence[int] | None = None,
    governor=None,
) -> set[Atom]:
    """All head instantiations derivable from *db* through this body.

    Returns the set of (ground) head atoms; the caller decides which are
    new.  A rule with an empty body yields its (ground) head.  Pass a
    precomputed *order* (see :func:`plan_order`) to skip per-call
    planning -- the semi-naive engine caches one plan per
    (rule, delta-position) pair across iterations.

    With a *governor* (a :class:`~repro.resilience.ResourceGovernor`),
    the firing loop ticks it so a wall-clock deadline or cancellation
    can interrupt even a single explosive rule; the resulting
    :class:`~repro.errors.ResourceLimitExceeded` propagates to the
    engine, which returns the facts committed so far as a PARTIAL
    outcome.
    """
    derived: set[Atom] = set()
    if not literals:
        derived.add(head)
        if stats is not None:
            stats.rule_firings += 1
        return derived
    head_vars = frozenset(head.variables())
    for bindings in match_body(
        db,
        literals,
        stats=stats,
        source_for=source_for,
        witness_after=head_vars,
        order=order,
    ):
        if stats is not None:
            stats.rule_firings += 1
        if governor is not None:
            governor.tick()
        derived.add(head.substitute(bindings))
    return derived
