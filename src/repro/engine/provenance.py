"""Why-provenance: derivation tracking and proof trees.

The paper's procedures are all justified by *derivations* -- "there is a
sequence of substitutions φ1, ..., φn that shows hθ ∈ [P, T](bθ)"
(Theorem 1's proof).  This module makes such sequences first-class: the
provenance-tracking evaluator records, for every derived fact, one rule
instantiation that produced it, and :func:`derivation_tree` /
:func:`explain` unfold the recorded justifications into a readable
proof.

One justification per fact is kept (the first found), which is exactly
what the existence arguments in the paper need; full provenance
semirings are out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..data.database import Database
from ..lang.atoms import Atom
from ..lang.programs import Program
from ..lang.rules import Rule
from ..errors import UnsafeRuleError
from .joins import match_body
from .stats import EvaluationStats


@dataclass(frozen=True)
class Justification:
    """Why one fact holds: the rule and premises that produced it.

    ``rule is None`` marks an input fact (its own justification).
    """

    fact: Atom
    rule: Optional[Rule]
    premises: tuple[Atom, ...]

    @property
    def is_input(self) -> bool:
        return self.rule is None

    def __str__(self) -> str:
        if self.is_input:
            return f"{self.fact}  [given]"
        inner = ", ".join(str(p) for p in self.premises)
        return f"{self.fact}  [by '{self.rule}' from {inner}]"


@dataclass
class ProvenanceResult:
    """A computed database plus one justification per fact."""

    database: Database
    justifications: dict[Atom, Justification]
    stats: EvaluationStats


def evaluate_with_provenance(program: Program, db: Database) -> ProvenanceResult:
    """Compute ``P(db)`` recording one derivation per new fact.

    Uses a (naive-flavoured) fixpoint so that the recorded premises are
    always facts established in an earlier round -- guaranteeing the
    justification graph is acyclic and proof trees are finite.
    """
    if not program.is_positive:
        raise UnsafeRuleError("provenance evaluation requires a positive program")
    stats = EvaluationStats()
    stats.start()
    result = db.copy()
    justifications: dict[Atom, Justification] = {
        atom: Justification(atom, None, ()) for atom in db.atoms()
    }
    changed = True
    while changed:
        stats.iterations += 1
        changed = False
        pending: list[Justification] = []
        for rule in program.rules:
            if rule.is_fact:
                head = rule.head
                if head not in result and head not in (j.fact for j in pending):
                    pending.append(Justification(head, rule, ()))
                continue
            for bindings in match_body(result, rule.body, stats=stats):
                stats.rule_firings += 1
                head = rule.head.substitute(bindings)
                if head in result or head in justifications:
                    continue
                premises = tuple(
                    lit.atom.substitute(bindings) for lit in rule.body
                )
                justifications[head] = Justification(head, rule, premises)
                pending.append(justifications[head])
        for justification in pending:
            if result.add(justification.fact):
                stats.facts_derived += 1
                changed = True
                justifications.setdefault(justification.fact, justification)
    stats.stop()
    return ProvenanceResult(result, justifications, stats)


@dataclass(frozen=True)
class ProofNode:
    """A node of an unfolded proof tree."""

    fact: Atom
    rule: Optional[Rule]
    children: tuple["ProofNode", ...]

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)


def derivation_tree(provenance: ProvenanceResult, fact: Atom) -> ProofNode:
    """Unfold the recorded justifications into a proof tree for *fact*.

    Raises ``KeyError`` when the fact is not in the computed database.
    """
    justification = provenance.justifications.get(fact)
    if justification is None:
        raise KeyError(f"{fact} was not derived (and was not an input fact)")

    def build(j: Justification) -> ProofNode:
        children = tuple(
            build(provenance.justifications[premise]) for premise in j.premises
        )
        return ProofNode(j.fact, j.rule, children)

    return build(justification)


def explain(provenance: ProvenanceResult, fact: Atom) -> str:
    """A human-readable proof of *fact*, one indented line per step.

    >>> # G(1, 3) because G(1, 2) and G(2, 3), which are edges.
    """
    tree = derivation_tree(provenance, fact)
    lines: list[str] = []

    def render(node: ProofNode, indent: int) -> None:
        pad = "  " * indent
        if node.is_leaf and node.rule is None:
            lines.append(f"{pad}{node.fact}   (given)")
        else:
            lines.append(f"{pad}{node.fact}   (by: {node.rule})")
            for child in node.children:
                render(child, indent + 1)

    render(tree, 0)
    return "\n".join(lines)
