"""Naive bottom-up evaluation.

Section III: "Computing the output by repeatedly instantiating rules,
until no new ground atoms can be generated, is known as bottom-up
computation.  For a fixed program, this method runs in polynomial time
in the size of the EDB."

The naive engine re-derives everything every iteration; it exists as the
correctness baseline and as the slow end of the Q7 engine benchmark.
"""

from __future__ import annotations

from ..data.database import Database
from ..errors import UnsafeRuleError
from ..lang.programs import Program
from ..obs.tracer import trace
from .fixpoint import EvaluationResult
from .joins import fire_rule
from .stats import EvaluationStats


def naive_fixpoint(program: Program, db: Database) -> EvaluationResult:
    """Iterate all rules over the full database until nothing is new."""
    if not program.is_positive:
        raise UnsafeRuleError(
            "naive evaluation requires a positive program; "
            "use repro.engine.stratified for programs with negation"
        )
    stats = EvaluationStats(engine="naive")
    stats.start()
    result = db.copy()
    with trace("naive.eval", rules=len(program.rules)) as root:
        root.watch(stats)
        changed = True
        while changed:
            stats.iterations += 1
            changed = False
            with trace("naive.iteration", index=stats.iterations) as iteration:
                iteration.watch(stats)
                for rule_index, rule in enumerate(program.rules):
                    with trace("naive.rule", rule=rule_index) as span:
                        span.watch(stats)
                        for atom in fire_rule(result, rule.head, rule.body, stats=stats):
                            if result.add(atom):
                                stats.facts_derived += 1
                                changed = True
        if root:
            root.add("index_probes", result.probe_count())
            root.add("full_scans", result.scan_count())
    stats.stop()
    return EvaluationResult(result, stats)
