"""Naive bottom-up evaluation.

Section III: "Computing the output by repeatedly instantiating rules,
until no new ground atoms can be generated, is known as bottom-up
computation.  For a fixed program, this method runs in polynomial time
in the size of the EDB."

The naive engine re-derives everything every iteration; it exists as the
correctness baseline and as the slow end of the Q7 engine benchmark.
"""

from __future__ import annotations

from ..data.database import Database
from ..errors import ResourceLimitExceeded, UnsafeRuleError
from ..lang.programs import Program
from ..obs.tracer import trace
from ..resilience.governor import EvaluationStatus, ResourceGovernor
from .compile import KernelCache, cardinality_hint_provider
from .fixpoint import EvaluationResult
from .joins import fire_rule
from .stats import EvaluationStats


def naive_fixpoint(
    program: Program,
    db: Database,
    governor: ResourceGovernor | None = None,
    use_compiled: bool = True,
) -> EvaluationResult:
    """Iterate all rules over the full database until nothing is new.

    With a *governor*, a tripped limit stops iteration and the facts
    derived so far are returned as a ``PARTIAL`` result (a sound
    under-approximation of ``P(db)`` by monotonicity).

    *use_compiled* selects the kernel path (default) or the
    ``fire_rule`` reference path; both compute the same fixpoint.
    """
    if not program.is_positive:
        raise UnsafeRuleError(
            "naive evaluation requires a positive program; "
            "use repro.engine.stratified for programs with negation"
        )
    stats = EvaluationStats(engine="naive")
    stats.start()
    result = db.copy()
    status = EvaluationStatus.COMPLETE
    degradation = None
    kernels = (
        KernelCache(
            program.rules,
            result,
            hint_provider=cardinality_hint_provider(program, result),
        )
        if use_compiled
        else None
    )
    with trace("naive.eval", rules=len(program.rules)) as root:
        root.watch(stats)
        try:
            if governor is not None:
                governor.note(engine="naive")
            changed = True
            while changed:
                stats.iterations += 1
                if governor is not None:
                    governor.checkpoint(result, round=stats.iterations)
                changed = False
                with trace("naive.iteration", index=stats.iterations) as iteration:
                    iteration.watch(stats)
                    for rule_index, rule in enumerate(program.rules):
                        if governor is not None:
                            governor.note(rule_index=rule_index)
                            governor.tick()
                        with trace("naive.rule", rule=rule_index) as span:
                            span.watch(stats)
                            if kernels is not None:
                                derived = kernels.kernel(rule_index).run(
                                    result, stats=stats, governor=governor
                                )
                            else:
                                derived = fire_rule(
                                    result, rule.head, rule.body, stats=stats,
                                    governor=governor,
                                )
                            for atom in derived:
                                if result.add(atom):
                                    stats.facts_derived += 1
                                    if governor is not None:
                                        governor.add_facts(1)
                                    changed = True
        except ResourceLimitExceeded as error:
            status = EvaluationStatus.PARTIAL
            degradation = error.report
        if root:
            root.add("index_probes", result.probe_count())
            root.add("full_scans", result.scan_count())
    stats.stop()
    return EvaluationResult(result, stats, status=status, degradation=degradation)
