"""Tabled top-down query evaluation (QSQR-style).

The paper's introduction situates minimization as complementary to the
goal-directed evaluation methods of the mid-80s; magic sets
(:mod:`repro.engine.magic`) is the bottom-up member of that family, and
this module implements the top-down member: recursive query/subquery
evaluation with *tabling*, in the spirit of QSQ/QSQR (Vieille) and the
memoing approaches (Henschen--Naqvi, McKay--Shapiro) the paper cites.

A *call* is a predicate plus a binding pattern over its arguments
(constants at bound positions, free elsewhere).  Each distinct call
gets an answer table; rule bodies are solved left to right, extensional
atoms against the database and intensional atoms against the table of
the induced sub-call (registering it on first sight).  Tables grow
monotonically; the driver repeats global passes until no table changes
-- the standard iterative fix for incomplete tables under recursion.

The result is equivalent to magic sets on every query (asserted in the
tests and compared in the benchmarks); only the control strategy
differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..data.database import Database
from ..errors import ResourceLimitExceeded, UnsafeRuleError
from ..lang.atoms import Atom
from ..lang.programs import Program
from ..lang.terms import Term, Variable
from ..obs.tracer import trace
from ..resilience.governor import (
    DegradationReport,
    EvaluationStatus,
    ResourceGovernor,
)
from .fixpoint import EvaluationResult
from .stats import EvaluationStats


@dataclass(frozen=True)
class Call:
    """A tabled call: predicate + binding pattern (None = free)."""

    predicate: str
    pattern: tuple[Optional[Term], ...]

    def __str__(self) -> str:
        inner = ", ".join("_" if t is None else str(t) for t in self.pattern)
        return f"{self.predicate}({inner})"


def _call_for(atom: Atom, bindings: dict[Variable, Term], db: Database) -> Call:
    """The call induced by *atom* under *bindings*.

    Patterns (like table rows and binding values) are kept in *db*'s
    storage representation -- identity Terms on the row backend,
    interned ints on columnar -- so all comparisons below stay
    representation-consistent.
    """
    store = db.store_term
    pattern: list = []
    for term in atom.args:
        if isinstance(term, Variable):
            pattern.append(bindings.get(term))
        else:
            pattern.append(store(term))
    return Call(atom.predicate, tuple(pattern))


@dataclass
class TabledResult:
    """Answers for the root call plus the tabling statistics.

    Every row ever admitted to a table is a true fact of its call's
    predicate (rows are only added through rule bodies solved against
    the database and other tables), so a ``PARTIAL`` result's answers
    are a sound subset of the query's true answers.
    """

    answers: Database
    tables: dict[Call, set[tuple]]
    stats: EvaluationStats
    root: Call
    status: EvaluationStatus = EvaluationStatus.COMPLETE
    degradation: Optional[DegradationReport] = None

    @property
    def calls_made(self) -> int:
        return len(self.tables)

    @property
    def is_partial(self) -> bool:
        return self.status is EvaluationStatus.PARTIAL


def tabled_query(
    program: Program,
    db: Database,
    query: Atom,
    max_passes: int = 10_000,
    governor: ResourceGovernor | None = None,
) -> TabledResult:
    """Answer *query* top-down with tabling.

    Args:
        program: a positive program.
        db: the extensional database (initial IDB facts are honoured
            too, matching the paper's generalized inputs).
        query: the goal atom; non-variable arguments are the bound ones.
        max_passes: safety valve for the outer fixpoint (never reached
            on real inputs; tables grow monotonically and are finite).
        governor: optional resource limits; a trip stops the pass loop
            and the answers accumulated so far come back as ``PARTIAL``.
    """
    if not program.is_positive:
        raise UnsafeRuleError("tabled evaluation requires a positive program")
    stats = EvaluationStats(engine="topdown")
    stats.start()
    idb = program.idb_predicates

    tables: dict[Call, set[tuple]] = {}
    root = _call_for(query, {}, db)
    _register(tables, root)
    status = EvaluationStatus.COMPLETE
    degradation = None

    with trace("topdown.query", query=str(query)) as root_span:
        root_span.watch(stats)
        try:
            if governor is not None:
                governor.note(engine="topdown")
            for _ in range(max_passes):
                stats.iterations += 1
                if governor is not None:
                    governor.checkpoint(round=stats.iterations)
                changed = False
                calls_before = len(tables)
                with trace(
                    "topdown.pass", index=stats.iterations, calls=len(tables)
                ) as pass_span:
                    pass_span.watch(stats)
                    for call in list(tables):
                        if governor is not None:
                            governor.tick()
                        if _solve_call(
                            program, db, idb, call, tables, stats, governor
                        ):
                            changed = True
                # Registering a new sub-call is progress too: its table must be
                # solved (and may feed its parents) on the next pass.
                if len(tables) > calls_before:
                    changed = True
                if not changed:
                    break
        except ResourceLimitExceeded as error:
            status = EvaluationStatus.PARTIAL
            degradation = error.report
        if root_span:
            root_span.add("calls", len(tables))

    # Full pattern matching on the way out: the call pattern tracks
    # boundness only, so repeated query variables (``G(x, x)``) are
    # enforced here.
    from ..lang.substitution import match_atom

    pattern = db.adapt_atom(query)
    answers = Database()
    for row in tables[root]:
        if match_atom(pattern, Atom(query.predicate, row)) is not None:
            answers._add_row(query.predicate, db.decode_row(row))
    stats.stop()
    return TabledResult(
        answers=answers,
        tables=tables,
        stats=stats,
        root=root,
        status=status,
        degradation=degradation,
    )


def tabled_answer_query(
    program: Program,
    db: Database,
    query: Atom,
    governor: ResourceGovernor | None = None,
    max_passes: int = 10_000,
) -> tuple[Database, EvaluationResult]:
    """Registry adapter matching the query-engine ``answer`` signature.

    Same contract as :func:`repro.engine.magic.answer_query`: returns
    the answer database plus an :class:`EvaluationResult` whose database
    holds every tabled fact (all of them true facts of the program) and
    whose status/degradation reflect any governed interruption.
    """
    tabled = tabled_query(program, db, query, max_passes=max_passes, governor=governor)
    derived = db.copy()
    for call, rows in tabled.tables.items():
        for row in rows:
            derived._add_row(call.predicate, row)
    result = EvaluationResult(
        derived,
        tabled.stats,
        status=tabled.status,
        degradation=tabled.degradation,
    )
    return tabled.answers, result


def _register(tables: dict[Call, set[tuple]], call: Call) -> None:
    if call not in tables:
        tables[call] = set()


def _matches_pattern(row: tuple, pattern: tuple) -> bool:
    return all(p is None or p == v for p, v in zip(pattern, row))


def _solve_call(
    program: Program,
    db: Database,
    idb: frozenset[str],
    call: Call,
    tables: dict[Call, set[tuple]],
    stats: EvaluationStats,
    governor: ResourceGovernor | None = None,
) -> bool:
    """One pass over the rules for *call*; returns True if its table grew."""
    grew = False
    table = tables[call]
    # Initial IDB facts participate: seed from the database itself.
    for row in db.candidates(
        call.predicate,
        {i: t for i, t in enumerate(call.pattern) if t is not None},
    ):
        if row not in table:
            table.add(row)
            grew = True

    for rule in program.rules_for(call.predicate):
        bindings: dict[Variable, Term] = {}
        consistent = True
        for position, bound in enumerate(call.pattern):
            if bound is None:
                continue
            term = rule.head.args[position]
            if isinstance(term, Variable):
                existing = bindings.get(term)
                if existing is None:
                    bindings[term] = bound
                elif existing != bound:
                    consistent = False
                    break
            elif db.store_term(term) != bound:
                consistent = False
                break
        if not consistent:
            continue
        grew |= _solve_body(
            program, db, idb, rule, 0, bindings, call, tables, stats, governor
        )
    return grew


def _solve_body(
    program: Program,
    db: Database,
    idb: frozenset[str],
    rule,
    depth: int,
    bindings: dict[Variable, Term],
    call: Call,
    tables: dict[Call, set[tuple]],
    stats: EvaluationStats,
    governor: ResourceGovernor | None = None,
) -> bool:
    """Depth-first solution of the rule body; returns True on table growth."""
    if depth == len(rule.body):
        head = rule.head.substitute(bindings)
        stats.rule_firings += 1
        row = db.store_row(head.args)
        table = tables[call]
        if _matches_pattern(row, call.pattern) and row not in table:
            table.add(row)
            stats.facts_derived += 1
            if governor is not None:
                governor.add_facts(1)
            return True
        return False

    literal = rule.body[depth]
    atom = literal.atom
    stats.subgoal_attempts += 1
    if governor is not None:
        governor.tick()
    grew = False
    if atom.predicate in idb:
        subcall = _call_for(atom, bindings, db)
        _register(tables, subcall)
        rows = list(tables[subcall])
    else:
        bound = {}
        for position, term in enumerate(atom.args):
            if isinstance(term, Variable):
                value = bindings.get(term)
                if value is not None:
                    bound[position] = value
            else:
                bound[position] = term
        rows = db.candidates(atom.predicate, bound)

    # Compare in storage representation (constants encoded once here,
    # not per row).
    adapted_args = db.adapt_atom(atom).args
    for row in rows:
        added: list[Variable] = []
        ok = True
        for position, term in enumerate(adapted_args):
            if isinstance(term, Variable):
                value = bindings.get(term)
                if value is None:
                    bindings[term] = row[position]
                    added.append(term)
                elif value != row[position]:
                    ok = False
                    break
            elif term != row[position]:
                ok = False
                break
        if ok:
            grew |= _solve_body(
                program, db, idb, rule, depth + 1, bindings, call, tables, stats,
                governor,
            )
        for var in added:
            del bindings[var]
    return grew
