"""Quickstart: parse a Datalog program, optimize it, evaluate it.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.workloads import random_graph

# A reachability program a user might plausibly write.  It carries two
# kinds of fat: a weakened copy of an atom inside a rule (Edge(x, w))
# and a whole rule subsumed by the recursion (the 2-step rule).
SOURCE = """
    Reach(x, z) :- Edge(x, z), Edge(x, w).
    Reach(x, z) :- Reach(x, y), Reach(y, z).
    Reach(x, z) :- Edge(x, y), Edge(y, z).
"""


def main() -> None:
    program = repro.parse_program(SOURCE)
    print("original program:")
    print(repro.format_program(program))
    print()

    # Fig. 2 of the paper: remove every atom and rule redundant under
    # uniform equivalence.
    report = repro.optimize(program)
    print("optimized program:")
    print(repro.format_program(report.optimized))
    print()
    print(report.summary())
    print()

    # The optimized program computes the same answers, with fewer joins.
    edb = random_graph(40, 80, seed=1, predicate="Edge")
    before = repro.evaluate(program, edb)
    after = repro.evaluate(report.optimized, edb)
    assert before.database == after.database, "optimization must preserve results"

    print(f"facts in the closure : {before.database.count('Reach')}")
    print(f"join work, original  : {before.stats.subgoal_attempts} subgoal attempts")
    print(f"join work, optimized : {after.stats.subgoal_attempts} subgoal attempts")
    speedup = before.stats.subgoal_attempts / max(1, after.stats.subgoal_attempts)
    print(f"reduction            : {speedup:.2f}x fewer subgoal attempts")


if __name__ == "__main__":
    main()
