"""Andersen-style points-to analysis: Datalog's modern killer app.

Static program analysis is today's flagship Datalog workload (Doop,
Soufflé, cclyzer).  This example encodes inclusion-based (Andersen)
points-to analysis for a tiny imperative language as a Datalog program,
runs it on a synthetic 200-statement input, lets the library's
optimizer strip the redundancy a code generator might emit, and uses
why-provenance to explain an individual points-to fact.

Statement forms and their EDB relations:

    p = &a        Addr(p, a)
    p = q         Copy(p, q)
    p = *q        Load(p, q)
    *p = q        Store(p, q)

Run with:  python examples/points_to.py
"""

from __future__ import annotations

import random

import repro
from repro.engine.provenance import evaluate_with_provenance, explain

# The generator duplicated a subgoal in the load rule and emitted a
# specialized copy rule subsumed by the general one -- both are real
# shapes of machine-written Datalog, and both are redundant.
ANALYSIS = """
    % base: address-of
    Pts(p, a) :- Addr(p, a).

    % copy: p = q
    Pts(p, a) :- Copy(p, q), Pts(q, a).
    Pts(p, a) :- Copy(p, q), Copy(p, r), Pts(q, a).

    % load: p = *q
    Pts(p, a) :- Load(p, q), Pts(q, v), Pts(v, a), Pts(q, w).

    % store: *p = q
    Pts(v, a) :- Store(p, q), Pts(p, v), Pts(q, a).
"""


def generate_program_facts(statements: int, variables: int, seed: int) -> repro.Database:
    """A random straight-line program over ``variables`` pointer names."""
    rng = random.Random(seed)
    db = repro.Database()
    for _ in range(statements):
        kind = rng.random()
        p = f"v{rng.randrange(variables)}"
        q = f"v{rng.randrange(variables)}"
        if kind < 0.35:
            db.add_fact("Addr", p, f"obj{rng.randrange(variables)}")
        elif kind < 0.65:
            db.add_fact("Copy", p, q)
        elif kind < 0.85:
            db.add_fact("Load", p, q)
        else:
            db.add_fact("Store", p, q)
    return db


def main() -> None:
    analysis = repro.parse_program(ANALYSIS)
    print("analysis as written (note the duplicated subgoals):")
    print(repro.format_program(analysis))

    report = repro.optimize(analysis)
    print("\nafter repro.optimize:")
    print(repro.format_program(report.optimized))
    print(report.summary())

    facts = generate_program_facts(statements=200, variables=25, seed=7)
    raw = repro.evaluate(analysis, facts)
    opt = repro.evaluate(report.optimized, facts)
    assert raw.database == opt.database, "optimization must not change the analysis"

    print(f"\ninput statements      : {len(facts)}")
    print(f"points-to facts       : {raw.database.count('Pts')}")
    print(f"join work, as written : {raw.stats.subgoal_attempts} subgoal attempts")
    print(f"join work, optimized  : {opt.stats.subgoal_attempts} subgoal attempts")

    # Why does some pointer point to some object?  Ask provenance.
    provenance = evaluate_with_provenance(report.optimized, facts)
    derived = [
        j.fact
        for j in provenance.justifications.values()
        if j.fact.predicate == "Pts" and not j.is_input and j.rule is not None
        and len(j.premises) >= 2
    ]
    if derived:
        fact = max(derived, key=lambda a: str(a))
        print(f"\nwhy {fact}?")
        print(explain(provenance, fact))


if __name__ == "__main__":
    main()
