"""Uniform containment on transitive-closure variants (paper §§II-VI).

Walks through Examples 1-6 of the paper with live machinery: two
programs that compute the same transitive closure are *equivalent* but
not *uniformly* equivalent, and the freezing test of Section VI decides
uniform containment rule by rule.

Run with:  python examples/transitive_closure.py
"""

from __future__ import annotations

import repro
from repro.core.containment import check_rule_containment, check_uniform_containment
from repro.lang import format_atoms
from repro.workloads import random_graph

P1_SOURCE = """
    G(x, z) :- A(x, z).
    G(x, z) :- G(x, y), G(y, z).
"""

P2_SOURCE = """
    G(x, z) :- A(x, z).
    G(x, z) :- A(x, y), G(y, z).
"""


def main() -> None:
    p1 = repro.parse_program(P1_SOURCE)
    p2 = repro.parse_program(P2_SOURCE)
    print("P1 (non-linear TC):")
    print(repro.format_program(p1))
    print("\nP2 (right-linear TC):")
    print(repro.format_program(p2))

    # Example 4: the two are equivalent -- same closure on every EDB.
    edb = random_graph(12, 25, seed=8)
    out1 = repro.evaluate(p1, edb).database
    out2 = repro.evaluate(p2, edb).database
    print(f"\nequivalent on a random EDB: {out1 == out2}")

    # ...but not uniformly equivalent: give G a head start and P2 stops
    # computing the closure of the initial G facts.
    print(f"P2 ⊑u P1: {repro.uniformly_contains(p1, p2)}")
    print(f"P1 ⊑u P2: {repro.uniformly_contains(p2, p1)}")

    # Example 6's transcript: the freezing test, rule by rule.
    print("\n--- Section VI freezing test, P2 ⊑u P1, rule by rule ---")
    for rule in p2.rules:
        witness = check_rule_containment(rule, p1)
        print(f"\nrule       : {rule}")
        print(f"frozen body: {format_atoms(witness.canonical_input)}")
        print(f"P1(bθ)     : {format_atoms(witness.canonical_output)}")
        print(f"hθ = {witness.frozen_head} derived: {witness.holds}")

    print("\n--- and the failing direction, P1 ⊑u P2 ---")
    report = check_uniform_containment(container=p2, contained=p1)
    for witness in report.witnesses:
        status = "holds" if witness.holds else "FAILS"
        print(f"{status}: {witness.rule}")
    failing = report.failing_rules[0]
    print(
        f"\nwitness: freezing '{failing}' gives a database on which P2 "
        "derives nothing new, so the frozen head is never produced -- "
        "exactly the paper's Example 6."
    )


if __name__ == "__main__":
    main()
