"""Optimization under equivalence with tgds (paper §§VIII-XI, Examples 11-19).

The atom ``A(y, w)`` in the recursive rule below is *not* redundant
under uniform equivalence (Fig. 2 keeps it), yet it is redundant under
plain equivalence.  The paper's Section X recipe proves it, using the
tuple-generating dependency ``G(x, z) -> A(x, w)``:

1. ``SAT(T) ∩ M(P1) ⊆ M(P2)``     -- chase test (Example 11)
2. ``P1`` preserves ``T``          -- Fig. 3 (Examples 13-14)
3'. the preliminary DB satisfies T -- (Example 18)

Section XI closes the loop: the tgd itself is *discovered* by syntactic
heuristics over the rule body, which is what `repro.optimize` runs.

Run with:  python examples/constraint_optimization.py
"""

from __future__ import annotations

import repro
from repro.core.heuristics import candidate_tgds
from repro.workloads import chain

P1_SOURCE = """
    G(x, z) :- A(x, z).
    G(x, z) :- G(x, y), G(y, z), A(y, w).
"""


def main() -> None:
    p1 = repro.parse_program(P1_SOURCE)
    print("P1:")
    print(repro.format_program(p1))

    # Step 0: uniform minimization finds nothing -- the guard matters
    # under uniform equivalence.
    uniform = repro.minimize_program(p1)
    print(f"\nFig. 2 removals: {len(uniform.atom_removals)} "
          "(the guard is NOT redundant under uniform equivalence)")

    # Step 1: Section XI heuristics propose candidate tgds from the body.
    recursive_rule = p1.rules[1]
    print("\ncandidate tgds (Section XI heuristics):")
    for candidate in candidate_tgds(recursive_rule):
        print(f"  {candidate}")

    # Step 2: the Section X recipe proves P1 ≡ P2 for the right tgd.
    tgd = repro.parse_tgd("G(x, z) -> A(x, w)")
    p2 = repro.parse_program(
        """
        G(x, z) :- A(x, z).
        G(x, z) :- G(x, y), G(y, z).
        """
    )
    proof = repro.prove_equivalence_with_constraints(p1, p2, [tgd])
    print(f"\nproof using tgd {tgd}:")
    print(proof.explain())

    # Step 3: or just let the optimizer do all of it.
    report = repro.optimize(p1)
    print("\nrepro.optimize(P1):")
    print(repro.format_program(report.optimized))
    print(report.summary())

    # The two programs agree on every EDB -- demonstrate on a chain.
    edb = chain(30)
    before = repro.evaluate(p1, edb)
    after = repro.evaluate(report.optimized, edb)
    assert before.database == after.database
    print(f"\nsame closure ({before.database.count('G')} facts); join work "
          f"{before.stats.subgoal_attempts} -> {after.stats.subgoal_attempts} "
          "subgoal attempts")


if __name__ == "__main__":
    main()
