"""The paper's announced extensions: atom addition and stratified negation.

Two directions the paper points at without spelling out:

* §I remark -- the same machinery that *removes* redundant atoms can
  prove that an atom may be *added* without changing the program (the
  conjunct-adding optimization style of Chakravarthy/King, profitable
  when a small guard relation prunes a join early);

* conclusion -- "the results on uniform containment and minimization can
  be extended to Datalog programs with stratified negation".  Here that
  is done soundly by encoding negated literals as fresh complement
  predicates, minimizing the positive encoding, and decoding back.

Run with:  python examples/extensions.py
"""

from __future__ import annotations

import repro
from repro.core.augment import add_atom, addable_guards
from repro.core.stratified_opt import minimize_stratified
from repro.engine import evaluate_stratified
from repro.lang import parse_atom
from repro.workloads import chain


def atom_addition_demo() -> None:
    print("=== adding redundant atoms (Section I remark) ===")
    program = repro.parse_program(
        """
        G(x, z) :- A(x, z).
        G(x, z) :- A(x, y), G(y, z).
        """
    )
    rule = program.rules[1]
    candidates = [parse_atom("A(x, v)"), parse_atom("B(x)"), parse_atom("G(y, u)")]
    safe = addable_guards(program, rule, candidates)
    print(f"candidate guards: {[str(c) for c in candidates]}")
    print(f"provably redundant (safe to add): {[str(a) for a in safe]}")

    augmented = add_atom(program, rule, safe[0])
    print(f"\nafter {augmented}:")
    print(repro.format_program(augmented.program_after))
    edb = chain(10)
    assert (
        repro.evaluate(program, edb).database
        == repro.evaluate(augmented.program_after, edb).database
    )
    print("results verified identical on a 10-edge chain\n")


def stratified_demo() -> None:
    print("=== minimizing a stratified program (conclusion's extension) ===")
    program = repro.parse_program(
        """
        R(x, y) :- E(x, y).
        R(x, y) :- E(x, z), R(z, y).
        Un(x, y) :- Node(x), Node(y), Node(x), not R(x, y).
        Un(x, y) :- Node(x), Node(y), not R(x, y), not R(x, y).
        """
    )
    print("original:")
    print(repro.format_program(program))

    result = minimize_stratified(program)
    print("\nminimized:")
    print(repro.format_program(result.program))
    print(result.summary())

    edb = repro.Database.from_facts(
        {
            "E": [(i, i + 1) for i in range(5)],
            "Node": [(i,) for i in range(6)],
        }
    )
    before = evaluate_stratified(program, edb).database
    after = evaluate_stratified(result.program, edb).database
    assert before == after
    print(f"\nresults verified identical: {before.count('Un')} unreachable pairs")


if __name__ == "__main__":
    atom_addition_demo()
    stratified_demo()
