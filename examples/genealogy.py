"""A genealogy workload: ancestors, same-generation, magic sets, negation.

A domain-flavoured tour of the substrate the paper's optimization sits
on: a family database queried with recursive Datalog, goal-directed
evaluation via magic sets, and a stratified-negation query (the
extension the paper's conclusion announces).

Run with:  python examples/genealogy.py
"""

from __future__ import annotations

import repro
from repro.engine import answer_query, evaluate_stratified
from repro.lang import parse_atom
from repro.workloads import merged, random_tree, unary_marks

PROGRAM = """
    % ancestors
    Anc(x, y) :- Par(x, y).
    Anc(x, y) :- Par(x, z), Anc(z, y).

    % same generation (classic)
    Sg(x, x) :- Per(x).
    Sg(x, y) :- Par(xp, x), Sg(xp, yp), Par(yp, y).
"""

NEGATION_PROGRAM = """
    Anc(x, y) :- Par(x, y).
    Anc(x, y) :- Par(x, z), Anc(z, y).
    % founders: persons with no recorded parent
    HasParent(y) :- Par(x, y).
    Founder(x) :- Per(x), not HasParent(x).
"""


def main() -> None:
    people = 60
    edb = merged(
        random_tree(people, seed=42, predicate="Par"),
        unary_marks(range(people), predicate="Per"),
    )
    program = repro.parse_program(PROGRAM)

    full = repro.evaluate(program, edb)
    print(f"{people} people, {edb.count('Par')} parent edges")
    print(f"ancestor pairs       : {full.database.count('Anc')}")
    print(f"same-generation pairs: {full.database.count('Sg')}")
    print(f"full evaluation      : {full.stats.summary()}")

    # Goal-directed: only person 5's ancestors, via magic sets.
    query = parse_atom("Anc(x, 5)")
    answers, magic_result = answer_query(program, edb, query)
    print(f"\nancestors of person 5: {sorted(r[0].value for r in answers.tuples('Anc'))}")
    print(f"magic-sets evaluation: {magic_result.stats.summary()}")
    ratio = full.stats.subgoal_attempts / max(1, magic_result.stats.subgoal_attempts)
    print(f"goal-directed speedup: {ratio:.1f}x fewer subgoal attempts")

    # Stratified negation: founders = persons with no recorded parent.
    neg_program = repro.parse_program(NEGATION_PROGRAM)
    out = evaluate_stratified(neg_program, edb).database
    founders = sorted(r[0].value for r in out.tuples("Founder"))
    print(f"\nfounders (no recorded parent): {founders}")
    assert founders == [0], "the tree generator roots everything at 0"


if __name__ == "__main__":
    main()
