"""Legacy setuptools shim.

The reference environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs fail; keeping a ``setup.py`` (and omitting the
``[build-system]`` table from pyproject.toml) lets ``pip install -e .``
fall back to the legacy ``setup.py develop`` path, which needs neither
network access nor ``wheel``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
